//! Ablation bench for the **double-buffer depth design choice**
//! (DESIGN.md §4): prints simulated per-token latency at depths 1–4 and
//! bench-measures the tile scheduler recurrence.

use speedllm_accel::engine::{AccelConfig, Engine};
use speedllm_accel::opt::OptConfig;
use speedllm_accel::pipeline::{schedule_kernel, PipelineConfig, TileCost, Unit, N_RESOURCES};
use speedllm_bench::harness::Runner;
use speedllm_fpga_sim::cycles::Cycles;
use speedllm_fpga_sim::event::Timeline;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::weights::TransformerWeights;
use std::hint::black_box;
use std::sync::Arc;

fn print_ablation() {
    println!("--- double-buffer depth ablation (stories260K, full design) ---");
    let weights = Arc::new(TransformerWeights::synthetic(
        ModelConfig::stories260k(),
        42,
    ));
    for depth in [1usize, 2, 3, 4] {
        let mut cfg = AccelConfig::for_opt(&OptConfig::full());
        cfg.double_buffer_depth = depth;
        let mut engine = Engine::with_config(Arc::clone(&weights), OptConfig::full(), cfg).unwrap();
        let step = engine.decode_step(1, 0);
        println!("depth {depth}: {} cycles/token", step.cycles.0);
    }
    println!("----------------------------------------------------------------");
}

fn bench_scheduler(c: &mut Runner) {
    print_ablation();
    let tiles: Vec<TileCost> = (0..64)
        .map(|i| TileCost {
            read: Cycles(40 + (i % 7) * 3),
            compute: Cycles(35 + (i % 5) * 4),
            write: Cycles(if i % 8 == 0 { 20 } else { 0 }),
            unit: if i % 9 == 0 { Unit::Sfu } else { Unit::Mpe },
        })
        .collect();
    for (name, streamed) in [("streamed", true), ("sequential", false)] {
        let cfg = PipelineConfig {
            streamed,
            depth: 2,
            launch: Cycles(280),
            streamed_launch: Cycles(40),
        };
        c.bench_function(&format!("ablation/schedule_kernel_{name}"), |b| {
            b.iter(|| {
                let mut tl = Timeline::new(N_RESOURCES);
                let t = schedule_kernel(
                    &mut tl,
                    None,
                    &cfg,
                    Cycles::ZERO,
                    Cycles::ZERO,
                    Cycles::ZERO,
                    black_box(&tiles),
                    "bench",
                );
                black_box(t.span.end)
            })
        });
    }
}

fn main() {
    let mut c = Runner::from_env();
    bench_scheduler(&mut c);
    c.finish();
}
