//! Sparsity study (the paper's §1 motivation: FPGAs exploit sparsity that
//! "fails to translate into real-world performance gains" on GPUs).
//! Prints the simulated matvec latency vs block-sparsity level on the
//! SpeedLLM MPE — where pruned blocks are skipped — against a GPU, where
//! unstructured/block sparsity at this granularity gives no dense-kernel
//! speedup; then bench-measures the sparse CPU kernel.

use speedllm_bench::harness::Runner;
use speedllm_fpga_sim::hbm::{Hbm, HbmConfig};
use speedllm_fpga_sim::mpe::{Mpe, MpeConfig};
use speedllm_llama::rng::Xoshiro256;
use speedllm_llama::sparse::BlockSparseMatrix;
use std::hint::black_box;

const BLOCK: usize = 8;

fn print_study() {
    println!("--- block-sparsity study (stories15M FFN matvec, 768x288) ---");
    let mpe = Mpe::new(MpeConfig::u280_fp32());
    let hbm = Hbm::new(HbmConfig::u280());
    let (rows, cols) = (768usize, 288usize);
    let dense_bytes = (rows * cols * 4) as u64;
    let dense_read = hbm.transfer_cost(dense_bytes, 24);
    let dense_compute = mpe.tile_cost(rows, cols);
    let dense_cycles = dense_read.max(dense_compute);
    for sparsity in [0.0f64, 0.25, 0.5, 0.75, 0.9] {
        let density = 1.0 - sparsity;
        let bytes = ((dense_bytes as f64) * density) as u64 + (rows * cols / BLOCK * 4) as u64 / 8;
        let read = hbm.transfer_cost(bytes, 24);
        let compute = mpe.sparse_tile_cost(rows, cols, density, BLOCK);
        let cycles = read.max(compute);
        println!(
            "sparsity {:>4.0}%: FPGA {:>5} cycles ({:.2}x) | GPU 1.00x (dense kernel)",
            sparsity * 100.0,
            cycles.0,
            dense_cycles.0 as f64 / cycles.0 as f64
        );
    }
    println!("--------------------------------------------------------------");
}

fn bench_sparse_kernels(c: &mut Runner) {
    print_study();
    let (rows, cols) = (768usize, 288usize);
    let mut rng = Xoshiro256::seed_from_u64(3);
    let mut w = vec![0.0f32; rows * cols];
    let mut x = vec![0.0f32; cols];
    rng.fill_normal(&mut w, 0.02);
    rng.fill_normal(&mut x, 1.0);
    let mut out = vec![0.0f32; rows];

    c.bench_function("sparsity/dense_matvec", |b| {
        b.iter(|| {
            speedllm_llama::ops::matvec(black_box(&mut out), &w, &x, rows, cols);
            black_box(out[0])
        })
    });
    for sparsity in [0.5f32, 0.9] {
        let m = BlockSparseMatrix::prune(&w, rows, cols, BLOCK, sparsity);
        c.bench_function(
            &format!("sparsity/sparse_matvec_{:.0}pct", sparsity * 100.0),
            |b| {
                b.iter(|| {
                    m.matvec(black_box(&mut out), &x);
                    black_box(out[0])
                })
            },
        );
    }
    c.bench_function("sparsity/prune_768x288", |b| {
        b.iter(|| black_box(BlockSparseMatrix::prune(&w, rows, cols, BLOCK, 0.5).nnz_blocks()))
    });
}

fn main() {
    let mut c = Runner::from_env().sample_size(30);
    bench_sparse_kernels(&mut c);
    c.finish();
}
