//! Ablation bench for **speculative decoding** (DESIGN.md §16): decodes
//! the same prompts sequentially and speculatively at draft depths
//! K ∈ {1, 2, 4, 8} and prints wall-clock decode tok/s plus the
//! acceptance rate. Decode streams the full weight matrix per token, so
//! one verify pass over K+1 rows amortizes the stream across the whole
//! accepted run — with the greedy sampler and a `draft_for` trunk the
//! acceptance rate is high enough that K = 4 clears 1.5x over the
//! sequential baseline on the bandwidth-bound stories15M config. The
//! timed targets stamp `spec_k` and `acceptance_rate` onto their JSONL
//! rows (the non-speculative baseline runs as `spec_k = 0`).
//!
//! The emitted streams are bit-identical to sequential decoding by
//! construction (tests/speculative_props.rs); this bench only measures
//! what that equivalence costs or saves.

use speedllm_bench::harness::{is_smoke, Runner};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::forward::Transformer;
use speedllm_llama::generate::{DecodeSession, GenerateOptions};
use speedllm_llama::kv_cache::KvCache;
use speedllm_llama::sampler::Sampler;
use speedllm_llama::speculative::{run_speculative, CpuVerifier, SpecMetrics, SpecSession};
use speedllm_llama::weights::TransformerWeights;
use std::hint::black_box;
use std::time::Instant;

const DEPTHS: [usize; 4] = [1, 2, 4, 8];

struct Models {
    cfg: ModelConfig,
    target: Transformer,
    draft: Transformer,
    prompts: Vec<Vec<u32>>,
    max_new: usize,
}

fn models() -> Models {
    // Non-smoke uses stories15M (~58 MB of f32 weights, far past cache):
    // decode is weight-bandwidth-bound there, which is the regime the
    // verify-pass amortization targets. The draft is the stories260K
    // trunk adapted to the target's vocabulary (`ModelConfig::draft_for`).
    let (cfg, n_prompts, max_new) = if is_smoke() {
        (ModelConfig::test_tiny(), 2, 8)
    } else {
        (ModelConfig::stories15m(), 3, 24)
    };
    let target = Transformer::new(TransformerWeights::synthetic(cfg, 42));
    let draft = Transformer::new(TransformerWeights::synthetic(
        ModelConfig::draft_for(&cfg),
        43,
    ));
    let prompts = (0..n_prompts)
        .map(|i| vec![1u32, 7 + i as u32, 3, 11 + 2 * i as u32])
        .collect();
    Models {
        cfg,
        target,
        draft,
        prompts,
        max_new,
    }
}

fn opts(max_new: usize) -> GenerateOptions {
    GenerateOptions {
        max_new_tokens: max_new,
        // Run the full budget so every configuration decodes the same
        // number of tokens and tok/s is comparable across rows.
        stop_at_eos: false,
    }
}

/// Sequential baseline: (tokens decoded, seconds).
fn sequential_run(m: &mut Models) -> (usize, f64) {
    let mut tokens = 0;
    let start = Instant::now();
    for prompt in &m.prompts {
        let mut sampler = Sampler::argmax();
        let mut session = DecodeSession::begin(&mut m.target, prompt, opts(m.max_new));
        while let Some(t) = session.step(&mut sampler) {
            black_box(t);
            tokens += 1;
        }
    }
    (tokens, start.elapsed().as_secs_f64())
}

/// Speculative run at depth `k`: (tokens decoded, seconds, metrics).
fn speculative_run(m: &mut Models, k: usize) -> (usize, f64, SpecMetrics) {
    let mut tokens = 0;
    let mut metrics = SpecMetrics::default();
    let start = Instant::now();
    for prompt in &m.prompts {
        let mut tkv = KvCache::new(&m.cfg);
        let mut dkv = KvCache::new(m.draft.config());
        let mut sampler = Sampler::argmax();
        let mut verifier = CpuVerifier::new(&mut m.target, &mut tkv);
        let mut session = SpecSession::begin(&mut verifier, prompt, k, opts(m.max_new));
        let out = run_speculative(
            &mut session,
            &mut verifier,
            &mut m.draft,
            &mut dkv,
            &mut sampler,
        );
        tokens += black_box(out.len());
        metrics.merge(session.metrics());
    }
    (tokens, start.elapsed().as_secs_f64(), metrics)
}

fn bench_speculative(c: &mut Runner) {
    let mut m = models();
    println!(
        "--- speculative decoding ablation ({}, {} prompts x {} tokens, greedy) ---",
        m.cfg,
        m.prompts.len(),
        m.max_new
    );

    let (base_tokens, base_secs) = sequential_run(&mut m);
    let base_tok_s = base_tokens as f64 / base_secs.max(f64::MIN_POSITIVE);
    println!("sequential: {base_tok_s:>10.1} tok/s (1.00x baseline)");
    c.set_meta("spec_k", "0");
    c.set_meta("acceptance_rate", "");
    c.bench_function("ablation/speculative_baseline", |b| {
        b.iter(|| sequential_run(&mut m).0)
    });

    for k in DEPTHS {
        let (tokens, secs, metrics) = speculative_run(&mut m, k);
        let tok_s = tokens as f64 / secs.max(f64::MIN_POSITIVE);
        println!(
            "k = {k}:      {tok_s:>10.1} tok/s ({:.2}x), acceptance {:.3}, {:.2} tokens/round",
            tok_s / base_tok_s.max(f64::MIN_POSITIVE),
            metrics.acceptance_rate(),
            metrics.emitted as f64 / (metrics.rounds as f64).max(1.0),
        );
        c.set_meta("spec_k", &k.to_string());
        c.set_meta(
            "acceptance_rate",
            &format!("{:.4}", metrics.acceptance_rate()),
        );
        c.bench_function(&format!("ablation/speculative_k{k}"), |b| {
            b.iter(|| speculative_run(&mut m, k).0)
        });
    }
    c.set_meta("spec_k", "");
    c.set_meta("acceptance_rate", "");
    println!("--------------------------------------------------------------------------");
}

fn main() {
    let mut c = Runner::from_env().sample_size(10);
    bench_speculative(&mut c);
    c.finish();
}
