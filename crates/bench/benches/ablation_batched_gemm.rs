//! Ablation bench for the **batched-decode GEMM** path (DESIGN.md §13):
//! decodes the same sequences through `CpuBackend::decode` at batch
//! widths 1/2/4/8 and prints wall-clock tok/s plus the telemetry-derived
//! weight bytes streamed per token. Decode is bandwidth-bound, so the
//! weight-reuse matmul (one stream of every matrix per step, shared by
//! the whole batch) makes tok/s climb with width while bytes-per-token
//! falls proportionally — the CPU twin of the accelerator's
//! weight-stream amortization. The bench targets time one batched
//! forward step per width and stamp `batch_width` onto their JSONL rows.

use speedllm_bench::harness::{is_smoke, Runner};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::forward::Transformer;
use speedllm_llama::kv_cache::KvCache;
use speedllm_llama::weights::TransformerWeights;
use speedllm_serve::{Backend, CpuBackend, CpuSlot};
use speedllm_telemetry as tel;
use std::hint::black_box;
use std::time::Instant;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn backend_with_slots(
    weights: &TransformerWeights,
    width: usize,
    prompt: &[u32],
) -> (CpuBackend, Vec<CpuSlot>) {
    let mut backend = CpuBackend::new(Transformer::new(weights.clone()));
    let slots = (0..width)
        .map(|i| {
            let mut slot = backend.new_slot();
            // Stagger prompts so batch members sit at different positions.
            let tokens: Vec<u32> = prompt.iter().map(|&t| t + i as u32).collect();
            backend.prefill(&mut slot, &tokens, 0);
            slot
        })
        .collect();
    (backend, slots)
}

/// Runs `steps` batched decode steps and returns (tokens, seconds).
fn decode_run(backend: &mut CpuBackend, slots: &mut [CpuSlot], steps: usize) -> (usize, f64) {
    let width = slots.len();
    let start = Instant::now();
    for step in 0..steps {
        let tokens: Vec<u32> = (0..width).map(|b| (5 + b + step) as u32).collect();
        let mut refs: Vec<&mut CpuSlot> = slots.iter_mut().collect();
        black_box(backend.decode(&mut refs, &tokens));
    }
    (width * steps, start.elapsed().as_secs_f64())
}

/// Short instrumented run: returns weight bytes streamed per token as
/// counted by the `cpu.gemm_*` telemetry counters.
fn probe_bytes_per_token(weights: &TransformerWeights, width: usize, prompt: &[u32]) -> f64 {
    let (mut backend, mut slots) = backend_with_slots(weights, width, prompt);
    let was_enabled = tel::enabled();
    tel::set_enabled(true);
    tel::metrics::reset();
    decode_run(&mut backend, &mut slots, 4);
    let snap = tel::metrics::snapshot();
    tel::set_enabled(was_enabled);
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    };
    // Counters are reset after prefill, so this is decode-only traffic:
    // the batched-GEMM weight-bytes-per-token figure.
    let bytes = get("cpu.gemm_weight_bytes") as f64;
    let tokens = get("cpu.gemm_tokens") as f64;
    bytes / tokens.max(1.0)
}

fn print_ablation() {
    // Non-smoke uses stories15M: ~58 MB of f32 weights, far past cache,
    // so decode really is weight-bandwidth-bound and the reuse win is the
    // paper-relevant regime. Smoke keeps the tiny config.
    let (cfg, steps) = if is_smoke() {
        (ModelConfig::test_tiny(), 8)
    } else {
        (ModelConfig::stories15m(), 48)
    };
    let prompt = [1u32, 7];
    println!("--- batched-decode GEMM ablation ({cfg}, {steps} decode steps, flat slots) ---");
    let weights = TransformerWeights::synthetic(cfg, 42);
    let mut base = 0.0f64;
    for width in WIDTHS {
        let (mut backend, mut slots) = backend_with_slots(&weights, width, &prompt);
        let (tokens, secs) = decode_run(&mut backend, &mut slots, steps);
        let tok_s = tokens as f64 / secs.max(f64::MIN_POSITIVE);
        if width == 1 {
            base = tok_s;
        }
        let bpt = probe_bytes_per_token(&weights, width, &prompt);
        println!(
            "batch {width}: {tok_s:>10.1} tok/s ({:.2}x), {:>8.3} MB weights streamed/token",
            tok_s / base.max(f64::MIN_POSITIVE),
            bpt / 1e6,
        );
    }
    println!("--------------------------------------------------------------------------");
}

fn bench_batched_gemm(c: &mut Runner) {
    print_ablation();
    // Timed targets on the tiny config: one batched decode step per
    // iteration at a pinned position, so the KV cache never overflows no
    // matter how many samples the harness takes.
    let cfg = ModelConfig::test_tiny();
    let weights = TransformerWeights::synthetic(cfg, 42);
    for width in WIDTHS {
        let mut model = Transformer::new(weights.clone());
        let mut kvs: Vec<KvCache> = (0..width).map(|_| KvCache::new(&cfg)).collect();
        let tokens: Vec<u32> = (0..width as u32).map(|i| 3 + i).collect();
        let positions = vec![0usize; width];
        c.set_meta("batch_width", &width.to_string());
        c.bench_function(&format!("ablation/batched_gemm_w{width}"), |b| {
            b.iter(|| {
                let mut refs: Vec<&mut KvCache> = kvs.iter_mut().collect();
                black_box(
                    model
                        .forward_batch_with_kv(refs.as_mut_slice(), &tokens, &positions)
                        .len(),
                )
            })
        });
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(10);
    bench_batched_gemm(&mut c);
    c.finish();
}
