//! Timing bench behind **Fig 2(a)**: decode-step cost of the SpeedLLM
//! variants. The simulated (device) latency series is printed once at
//! startup — that is the figure's data; the timed samples measure the
//! simulator's own host-side throughput for regression tracking.

use speedllm_accel::opt::OptConfig;
use speedllm_bench::harness::Runner;
use speedllm_bench::{fig2a_workloads, headline_preset, run_paper_variants, SAMPLER, SEED};
use speedllm_llama::config::ModelConfig;
use std::hint::black_box;

fn print_figure_series() {
    println!("--- Fig 2(a) series (simulated device latency, stories15M) ---");
    let preset = headline_preset();
    for w in fig2a_workloads() {
        let ms = run_paper_variants(&preset, &w);
        let ours = speedllm_bench::find(&ms, "SpeedLLM (ours)");
        let unopt = speedllm_bench::find(&ms, "unoptimized");
        println!(
            "{:<16} ours {:>9.3} ms  unopt {:>9.3} ms  speedup {:.2}x",
            w.name,
            ours.latency_s() * 1e3,
            unopt.latency_s() * 1e3,
            unopt.latency_s() / ours.latency_s()
        );
    }
    println!("----------------------------------------------------------------");
}

fn bench_decode_step(c: &mut Runner) {
    print_figure_series();
    c.set_meta("config", "stories260k");
    for (name, opt) in OptConfig::paper_variants() {
        c.set_meta("variant", name);
        let mut group = c.benchmark_group("fig2a/decode_step");
        let system = speedllm_accel::runtime::AcceleratedLlm::synthetic(
            ModelConfig::stories260k(),
            SEED,
            opt,
        )
        .unwrap();
        let mut session = system.session(SAMPLER, SEED);
        // Warm the context so attention has work to do.
        for pos in 0..4 {
            session.step(1 + pos as u32, pos);
        }
        let mut pos = 4usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = session.step(black_box(7), pos);
                pos += 1;
                if pos >= 500 {
                    session.engine_mut().reset();
                    pos = 0;
                }
                black_box(r.cycles)
            })
        });
        group.finish();
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(20);
    bench_decode_step(&mut c);
    c.finish();
}
