//! Ablation bench for the **quantized serve hot path** (DESIGN.md §18):
//! decodes the same batched workload with f32, int8 (Q8_0) and int4
//! (Q4_0) weights at batch widths 1/4/8 on both serve backends, and
//! prints wall-clock tok/s plus the telemetry-derived weight bytes
//! streamed per token. Decode is weight-bandwidth-bound, so the fused
//! dequant-GEMM kernels trade a little per-group rescale arithmetic for
//! a 4x (int8) / 7x (int4) smaller weight stream — the `gemm_weight_bytes`
//! column is the compressed stream the paper's mixed-precision MPE
//! feeds on. The timed targets stamp `quant` and `batch_width` onto
//! their JSONL rows.

use speedllm_bench::harness::{is_smoke, Runner};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::forward::Transformer;
use speedllm_llama::kv_cache::KvCache;
use speedllm_llama::weights::TransformerWeights;
use speedllm_llama::QuantMode;
use speedllm_serve::{AccelBackend, Backend, CpuBackend};
use speedllm_telemetry as tel;
use std::hint::black_box;
use std::time::Instant;

const MODES: [QuantMode; 3] = [QuantMode::F32, QuantMode::Int8, QuantMode::Int4];
const WIDTHS: [usize; 3] = [1, 4, 8];

/// Prefills `width` staggered sequences on any serve backend.
fn make_slots<B: Backend>(backend: &mut B, width: usize, prompt: &[u32]) -> Vec<B::Slot> {
    (0..width)
        .map(|i| {
            let mut slot = backend.new_slot();
            let tokens: Vec<u32> = prompt.iter().map(|&t| t + i as u32).collect();
            backend.prefill(&mut slot, &tokens, 0);
            slot
        })
        .collect()
}

/// Runs `steps` batched decode steps and returns (tokens, seconds).
fn decode_run<B: Backend>(backend: &mut B, slots: &mut [B::Slot], steps: usize) -> (usize, f64) {
    let width = slots.len();
    let start = Instant::now();
    for step in 0..steps {
        let tokens: Vec<u32> = (0..width).map(|b| (5 + b + step) as u32).collect();
        let mut refs: Vec<&mut B::Slot> = slots.iter_mut().collect();
        black_box(backend.decode(&mut refs, &tokens));
    }
    (width * steps, start.elapsed().as_secs_f64())
}

/// Short instrumented run: decode-only weight bytes streamed per token as
/// counted by the backend's `*.gemm_*` telemetry counters.
fn probe_bytes_per_token<B: Backend>(
    backend: &mut B,
    width: usize,
    prompt: &[u32],
    counter_prefix: &str,
) -> f64 {
    let mut slots = make_slots(backend, width, prompt);
    let was_enabled = tel::enabled();
    tel::set_enabled(true);
    tel::metrics::reset();
    decode_run(backend, &mut slots, 4);
    let snap = tel::metrics::snapshot();
    tel::set_enabled(was_enabled);
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    };
    let bytes = get(&format!("{counter_prefix}.gemm_weight_bytes")) as f64;
    let tokens = get(&format!("{counter_prefix}.gemm_tokens")) as f64;
    bytes / tokens.max(1.0)
}

fn cpu_backend(weights: &TransformerWeights, mode: QuantMode) -> CpuBackend {
    let mut model = Transformer::new(weights.clone());
    model.set_quant_mode(mode);
    CpuBackend::new(model)
}

fn accel_backend(weights: &std::sync::Arc<TransformerWeights>, mode: QuantMode) -> AccelBackend {
    let opt = match mode {
        QuantMode::F32 => speedllm_accel::opt::OptConfig::full(),
        QuantMode::Int8 => speedllm_accel::opt::OptConfig::full_int8(),
        QuantMode::Int4 => speedllm_accel::opt::OptConfig::full_int4(),
    };
    let engine =
        speedllm_accel::engine::Engine::new(weights.clone(), opt).expect("accel design fits");
    AccelBackend::new(engine)
}

fn print_backend_ablation<B: Backend>(
    label: &str,
    steps: usize,
    prompt: &[u32],
    counter_prefix: &str,
    mut fresh: impl FnMut(QuantMode) -> B,
) {
    println!("--- quantized serve hot path: {label} ---");
    let mut base = 0.0f64;
    for mode in MODES {
        for width in WIDTHS {
            let mut backend = fresh(mode);
            let mut slots = make_slots(&mut backend, width, prompt);
            let (tokens, secs) = decode_run(&mut backend, &mut slots, steps);
            let tok_s = tokens as f64 / secs.max(f64::MIN_POSITIVE);
            if mode == QuantMode::F32 && width == 1 {
                base = tok_s;
            }
            let mut probe = fresh(mode);
            let bpt = probe_bytes_per_token(&mut probe, width, prompt, counter_prefix);
            println!(
                "{:>4} batch {width}: {tok_s:>10.1} tok/s ({:.2}x), {:>8.3} MB weights streamed/token",
                mode.name(),
                tok_s / base.max(f64::MIN_POSITIVE),
                bpt / 1e6,
            );
        }
    }
    println!("-------------------------------------------------------------------------");
}

fn print_ablation() {
    // Non-smoke uses stories15M on the CPU (~58 MB of f32 weights, far
    // past cache, so decode really is weight-bandwidth-bound) and
    // stories260K on the simulated accelerator (the cycle model makes
    // the weight-traffic ratio exact at any size). Smoke keeps tiny.
    let (cpu_cfg, accel_cfg, steps) = if is_smoke() {
        (ModelConfig::test_tiny(), ModelConfig::test_tiny(), 8)
    } else {
        (ModelConfig::stories15m(), ModelConfig::stories260k(), 48)
    };
    let prompt = [1u32, 7];

    let cpu_weights = TransformerWeights::synthetic(cpu_cfg, 42);
    print_backend_ablation(
        &format!("CpuBackend ({cpu_cfg}, {steps} decode steps)"),
        steps,
        &prompt,
        "cpu",
        |mode| cpu_backend(&cpu_weights, mode),
    );

    let accel_weights = std::sync::Arc::new(TransformerWeights::synthetic(accel_cfg, 42));
    print_backend_ablation(
        &format!("AccelBackend ({accel_cfg}, {steps} decode steps)"),
        steps,
        &prompt,
        "accel",
        |mode| accel_backend(&accel_weights, mode),
    );
}

fn bench_quant_ablation(c: &mut Runner) {
    print_ablation();
    // Timed targets on the tiny config: one batched decode step per
    // iteration at a pinned position, so the KV cache never overflows no
    // matter how many samples the harness takes.
    let cfg = ModelConfig::test_tiny();
    let weights = TransformerWeights::synthetic(cfg, 42);
    for mode in MODES {
        for width in WIDTHS {
            let mut model = Transformer::new(weights.clone());
            model.set_quant_mode(mode);
            let mut kvs: Vec<KvCache> = (0..width).map(|_| KvCache::new(&cfg)).collect();
            let tokens: Vec<u32> = (0..width as u32).map(|i| 3 + i).collect();
            let positions = vec![0usize; width];
            c.set_meta("quant", mode.name());
            c.set_meta("batch_width", &width.to_string());
            c.bench_function(&format!("ablation/quant_{}_w{width}", mode.name()), |b| {
                b.iter(|| {
                    let mut refs: Vec<&mut KvCache> = kvs.iter_mut().collect();
                    black_box(
                        model
                            .forward_batch_with_kv(refs.as_mut_slice(), &tokens, &positions)
                            .len(),
                    )
                })
            });
        }
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(10);
    bench_quant_ablation(&mut c);
    c.finish();
}
