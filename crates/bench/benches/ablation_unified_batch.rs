//! Ablation bench for the **unified mixed prefill+decode batch**
//! (DESIGN.md §14): serves the same seeded bursty open-loop workload
//! through the accelerator backend twice — phase-serialized (PR 5 loop)
//! vs unified (Sarathi-style token-budget ticks) — at equal paged-KV
//! budget, and prints TTFT p99 against offered load. The unified tick
//! streams each weight matrix once for decode and prefill rows together,
//! so first tokens land sooner as bursts pile up. The bench target times
//! one full serve run of each scheduler on the simulator.

use speedllm_accel::engine::Engine;
use speedllm_accel::opt::OptConfig;
use speedllm_bench::harness::{is_smoke, Runner};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::sampler::SamplerKind;
use speedllm_llama::weights::TransformerWeights;
use speedllm_pagedkv::BlockConfig;
use speedllm_serve::{
    AccelBackend, ArrivalMode, LoadGen, LoadGenConfig, ServeConfig, ServeEngine, ServeReport,
    UnifiedConfig,
};
use std::hint::black_box;
use std::sync::Arc;

const BLOCK_SIZE: usize = 8;
const SLOTS: usize = 4;

fn workload(cfg: ModelConfig, n_requests: usize, burst_gap: u64) -> LoadGenConfig {
    LoadGenConfig {
        n_requests,
        mode: ArrivalMode::Bursty {
            burst_size: 4,
            burst_gap,
        },
        prompt_len: (8, (cfg.seq_len / 2).clamp(8, 64)),
        shared_prefix_len: 0,
        max_new_tokens: (4, 12),
        sampler: SamplerKind::Temperature(0.8),
        stop_at_eos: false,
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        seed: 42,
    }
}

/// Both schedulers get the same arena: `SLOTS` full contexts of blocks —
/// the "equal KV budget" in the ISSUE 6 acceptance criterion.
fn serve_once(
    weights: &Arc<TransformerWeights>,
    cfg: ModelConfig,
    unified: Option<UnifiedConfig>,
    lcfg: &LoadGenConfig,
) -> ServeReport {
    let engine = Engine::new(Arc::clone(weights), OptConfig::full()).unwrap();
    let blocks = BlockConfig {
        block_size: BLOCK_SIZE,
        n_blocks: SLOTS * cfg.seq_len.div_ceil(BLOCK_SIZE),
    };
    let mut serve = ServeEngine::new(
        AccelBackend::new_paged(engine, blocks),
        ServeConfig {
            slots: SLOTS,
            max_batch: SLOTS,
            prefill_chunk: 4,
            queue_cap: 64,
            unified,
        },
    );
    let mut traffic = LoadGen::new(lcfg);
    let completions = serve.run_with_source(&mut traffic);
    ServeReport::from_run(&completions, serve.stats(), serve.slot_reuses())
}

fn print_ablation() {
    // Offered load rises as the inter-burst gap shrinks; the gaps are
    // sized to the model's per-burst service time so the sweep actually
    // spans under-subscribed to saturated.
    let (cfg, n, gaps) = if is_smoke() {
        (ModelConfig::test_tiny(), 8, [16384u64, 4096, 1024])
    } else {
        (ModelConfig::stories260k(), 24, [131072u64, 32768, 8192])
    };
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 42));
    println!(
        "--- unified-batch ablation ({cfg}, {n} requests, bursts of 4, {SLOTS} slots, equal KV budget) ---"
    );
    for burst_gap in gaps {
        let lcfg = workload(cfg, n, burst_gap);
        let legacy = serve_once(&weights, cfg, None, &lcfg);
        let uni = serve_once(&weights, cfg, Some(UnifiedConfig::default()), &lcfg);
        assert_eq!(
            legacy.tokens, uni.tokens,
            "schedulers must emit same tokens"
        );
        println!(
            "burst gap {burst_gap:>4}: ttft p99 {:>8} -> {:>8} cycles ({:+.1}%), \
             makespan {:>9} -> {:>9}, overlap ticks {}",
            legacy.ttft.p99,
            uni.ttft.p99,
            (uni.ttft.p99 as f64 / legacy.ttft.p99.max(1) as f64 - 1.0) * 100.0,
            legacy.makespan,
            uni.makespan,
            uni.stats.overlap_ticks,
        );
    }
    println!(
        "--------------------------------------------------------------------------------------"
    );
}

fn bench_unified_batch(c: &mut Runner) {
    print_ablation();
    let cfg = ModelConfig::test_tiny();
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 42));
    let lcfg = workload(cfg, 8, 32);
    c.bench_function("ablation/serve_phase_serialized", |b| {
        b.iter(|| black_box(serve_once(&weights, cfg, None, &lcfg).tokens))
    });
    c.bench_function("ablation/serve_unified_batch", |b| {
        b.iter(|| {
            black_box(serve_once(&weights, cfg, Some(UnifiedConfig::default()), &lcfg).tokens)
        })
    });
}

fn main() {
    let mut c = Runner::from_env().sample_size(10);
    bench_unified_batch(&mut c);
    c.finish();
}
