//! Context-length ablation: per-token decode cost grows with the cached
//! context (KV paging). The int8 KV cache (extension) cuts attention
//! *traffic* ~4x; at TinyStories scale the wall-clock effect is modest
//! (attention pages are small next to weight streams) but the energy-side
//! traffic saving is exact — both are printed. The harness then measures a
//! long-context decode step.

use speedllm_accel::engine::{AccelConfig, Engine};
use speedllm_accel::opt::OptConfig;
use speedllm_bench::harness::Runner;
use speedllm_fpga_sim::mpe::Precision;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::weights::TransformerWeights;
use std::hint::black_box;
use std::sync::Arc;

fn build(kv: Precision, weights: &Arc<TransformerWeights>) -> Engine {
    let mut cfg = AccelConfig::for_opt(&OptConfig::full());
    cfg.kv_precision = kv;
    Engine::with_config(Arc::clone(weights), OptConfig::full(), cfg).unwrap()
}

fn print_sweep() {
    println!("--- decode cost vs context length (stories15M, seq 256) ---");
    let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::stories15m(), 42));
    let mut f32kv = build(Precision::Fp32, &weights);
    let mut i8kv = build(Precision::Int8, &weights);
    let checkpoints = [0usize, 64, 128, 255];
    let mut next = 0usize;
    for pos in 0..=255 {
        let a = f32kv.decode_step(1 + (pos % 100) as u32, pos);
        let b = i8kv.decode_step(1 + (pos % 100) as u32, pos);
        if next < checkpoints.len() && pos == checkpoints[next] {
            println!(
                "ctx {pos:>3}: f32-KV {:>6} cyc, {:>9} B read | int8-KV {:>6} cyc, {:>9} B read ({:.2}x time, {:.2}x bytes)",
                a.cycles.0,
                a.stats.hbm.read_bytes,
                b.cycles.0,
                b.stats.hbm.read_bytes,
                a.cycles.0 as f64 / b.cycles.0 as f64,
                a.stats.hbm.read_bytes as f64 / b.stats.hbm.read_bytes as f64,
            );
            next += 1;
        }
    }
    println!("------------------------------------------------------------");
}

fn bench_long_context(c: &mut Runner) {
    print_sweep();
    let weights = Arc::new(TransformerWeights::synthetic(
        ModelConfig::stories260k(),
        42,
    ));
    for (name, kv) in [("f32", Precision::Fp32), ("int8", Precision::Int8)] {
        let mut engine = build(kv, &weights);
        for pos in 0..256 {
            engine.decode_step(1, pos);
        }
        let mut pos = 256usize;
        c.bench_function(&format!("ablation/decode_ctx256_kv_{name}"), |b| {
            b.iter(|| {
                let r = engine.decode_step(black_box(3), pos);
                pos += 1;
                if pos >= 500 {
                    // Reset and refill to the measurement window.
                    engine.reset();
                    for p in 0..256 {
                        engine.decode_step(1, p);
                    }
                    pos = 256;
                }
                black_box(r.cycles)
            })
        });
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(20);
    bench_long_context(&mut c);
    c.finish();
}
