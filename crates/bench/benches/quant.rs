//! Quantization microbenchmarks: Q8_0 quantize/dequantize and the int8
//! matvec vs the f32 matvec, plus the simulated int8-vs-fp32 accelerator
//! comparison (the paper's mixed-precision motivation).

use speedllm_accel::opt::OptConfig;
use speedllm_accel::runtime::AcceleratedLlm;
use speedllm_bench::harness::Runner;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::ops;
use speedllm_llama::quant::{QuantMatrix, QuantTensor};
use speedllm_llama::rng::Xoshiro256;
use std::hint::black_box;

fn print_precision_comparison() {
    println!("--- int8/int4 vs fp32 accelerator (stories260K, simulated) ---");
    for (name, opt) in [
        ("fp32", OptConfig::full()),
        ("int8", OptConfig::full_int8()),
        ("int4", OptConfig::full_int4()),
    ] {
        let sys = AcceleratedLlm::synthetic(ModelConfig::stories260k(), 42, opt).unwrap();
        let mut session = sys.session(speedllm_llama::sampler::SamplerKind::Argmax, 0);
        let r = session.generate("once upon a time", 32).unwrap();
        println!(
            "{name}: {:>8.0} tok/s, {:>7.0} tok/J, {} HBM read bytes/token",
            r.decode_tokens_per_s(),
            r.tokens_per_joule(),
            r.stats.hbm.read_bytes
                / (r.output.generated_tokens.len() as u64 + r.output.prompt_tokens.len() as u64)
                    .max(1)
        );
    }
    println!("----------------------------------------------------------");
}

fn bench_quant(c: &mut Runner) {
    print_precision_comparison();
    let (rows, cols) = (768usize, 288usize);
    let mut rng = Xoshiro256::seed_from_u64(5);
    let mut w = vec![0.0f32; rows * cols];
    let mut x = vec![0.0f32; cols];
    rng.fill_normal(&mut w, 0.02);
    rng.fill_normal(&mut x, 1.0);

    c.bench_function("quant/quantize_768x288", |b| {
        b.iter(|| black_box(QuantMatrix::quantize(black_box(&w), rows, cols).bytes()))
    });

    let qm = QuantMatrix::quantize(&w, rows, cols);
    let mut out = vec![0.0f32; rows];
    c.bench_function("quant/matvec_int8_768x288", |b| {
        b.iter(|| {
            qm.matvec(black_box(&mut out), &x);
            black_box(out[0])
        })
    });
    c.bench_function("quant/matvec_f32_768x288", |b| {
        b.iter(|| {
            ops::matvec(black_box(&mut out), &w, &x, rows, cols);
            black_box(out[0])
        })
    });

    let data: Vec<f32> = (0..4096)
        .map(|i| ((i * 31 % 997) as f32 - 498.0) / 100.0)
        .collect();
    c.bench_function("quant/tensor_roundtrip_4096", |b| {
        b.iter(|| {
            let qt = QuantTensor::quantize(black_box(&data));
            black_box(qt.dequantize()[0])
        })
    });
}

fn main() {
    let mut c = Runner::from_env().sample_size(30);
    bench_quant(&mut c);
    c.finish();
}
