//! Ablation bench for **continuous batching** (extension beyond the
//! paper): serves the same seeded closed-loop workload through the
//! accelerator backend at increasing slot counts and prints the
//! virtual-tick throughput — weight-stream amortization across the batch
//! is what makes the line climb. The bench target times one full serve
//! run on the simulator.

use speedllm_accel::engine::Engine;
use speedllm_accel::opt::OptConfig;
use speedllm_bench::harness::{is_smoke, Runner};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::sampler::SamplerKind;
use speedllm_llama::weights::TransformerWeights;
use speedllm_serve::{
    AccelBackend, ArrivalMode, LoadGen, LoadGenConfig, ServeConfig, ServeEngine, ServeReport,
};
use std::hint::black_box;
use std::sync::Arc;

fn workload(cfg: ModelConfig, n_requests: usize, concurrency: usize) -> LoadGenConfig {
    LoadGenConfig {
        n_requests,
        mode: ArrivalMode::Closed { concurrency },
        prompt_len: (2, (cfg.seq_len / 4).clamp(2, 12)),
        shared_prefix_len: 0,
        max_new_tokens: (4, 12),
        sampler: SamplerKind::Temperature(0.8),
        stop_at_eos: true,
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        seed: 42,
    }
}

fn serve_once(
    weights: &Arc<TransformerWeights>,
    slots: usize,
    lcfg: &LoadGenConfig,
) -> ServeReport {
    let engine = Engine::new(Arc::clone(weights), OptConfig::full()).unwrap();
    let mut serve = ServeEngine::new(
        AccelBackend::new(engine),
        ServeConfig {
            slots,
            max_batch: slots,
            prefill_chunk: 16,
            queue_cap: 64,
            unified: None,
        },
    );
    let mut traffic = LoadGen::new(lcfg);
    let completions = serve.run_with_source(&mut traffic);
    ServeReport::from_run(&completions, serve.stats(), serve.slot_reuses())
}

fn print_ablation() {
    let (cfg, n) = if is_smoke() {
        (ModelConfig::test_tiny(), 8)
    } else {
        (ModelConfig::stories260k(), 24)
    };
    println!("--- continuous-batching ablation ({cfg}, {n} requests, closed loop) ---");
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 42));
    let mut base = 0.0f64;
    for slots in [1usize, 2, 4, 8] {
        let r = serve_once(&weights, slots, &workload(cfg, n, slots));
        if slots == 1 {
            base = r.tokens_per_kilotick;
        }
        println!(
            "slots {slots}: {:>8.3} tok/ktick ({:.2}x), ttft p95 {:>8} ticks, {} decode batches",
            r.tokens_per_kilotick,
            r.tokens_per_kilotick / base.max(f64::MIN_POSITIVE),
            r.ttft.p95,
            r.stats.decode_batches,
        );
    }
    println!("-----------------------------------------------------------------------");
}

fn bench_batching(c: &mut Runner) {
    print_ablation();
    let cfg = ModelConfig::test_tiny();
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 42));
    for slots in [1usize, 4] {
        let lcfg = workload(cfg, 8, slots);
        c.bench_function(&format!("ablation/serve_batching_slots_{slots}"), |b| {
            b.iter(|| black_box(serve_once(&weights, slots, &lcfg).tokens))
        });
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(10);
    bench_batching(&mut c);
    c.finish();
}
