//! Ablation bench for the **cluster router** (extension beyond the
//! paper, DESIGN.md §17): serves the same seeded open-loop shared-prefix
//! workload through clusters of 1, 2, 4, and 8 replicas at an *equal
//! per-replica KV budget*, reporting aggregate throughput and TTFT p99
//! on the cluster clock. A second table pins the replica count and
//! compares prefix-cache-aware placement against blind round-robin: the
//! shared prompt prefix concentrates on one warm replica under the
//! prefix policy, so placement-time cache hits rise and TTFT falls while
//! the emitted token streams stay bit-identical (seeded per-request
//! samplers). JSONL rows are stamped with `replicas` and `policy`.

use speedllm_bench::harness::{is_smoke, Runner};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::forward::Transformer;
use speedllm_llama::sampler::SamplerKind;
use speedllm_llama::weights::TransformerWeights;
use speedllm_pagedkv::BlockConfig;
use speedllm_router::{Cluster, ClusterConfig, Policy};
use speedllm_serve::{ArrivalMode, CpuBackend, LoadGen, LoadGenConfig, ServeConfig, ServeEngine};
use std::hint::black_box;

/// Open-loop workload where every prompt opens with `shared` common
/// tokens before its unique tail — arrivals are independent of the
/// cluster, so replica counts compare on the same offered load.
fn workload(cfg: ModelConfig, n_requests: usize, shared: usize) -> LoadGenConfig {
    LoadGenConfig {
        n_requests,
        // Dense enough to saturate a single replica: replica scaling then
        // shows up as queue-wait (TTFT) relief, not just idle capacity.
        mode: ArrivalMode::Open {
            mean_interarrival: 1,
        },
        prompt_len: (shared + 2, shared + 4),
        shared_prefix_len: shared,
        max_new_tokens: (2, 6),
        sampler: SamplerKind::Temperature(0.8),
        stop_at_eos: true,
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        seed: 42,
    }
}

/// `n_replicas` identical paged CPU replicas, each with the same KV
/// budget (`flat_slots * seq_len` tokens as a block arena).
fn replicas(
    cfg: ModelConfig,
    n_replicas: usize,
    flat_slots: usize,
    block_size: usize,
) -> Vec<ServeEngine<CpuBackend>> {
    let bc = BlockConfig {
        block_size,
        n_blocks: flat_slots * cfg.seq_len.div_ceil(block_size),
    };
    (0..n_replicas)
        .map(|_| {
            let model = Transformer::new(TransformerWeights::synthetic(cfg, 42));
            // One cluster tick = one batch step per replica, so replica
            // scaling only shows on the cluster clock when a single
            // round's capacity is small relative to the offered load.
            ServeEngine::new(
                CpuBackend::new_paged(model, bc),
                ServeConfig {
                    slots: bc.n_blocks,
                    max_batch: 2,
                    prefill_chunk: 2,
                    queue_cap: 64,
                    unified: None,
                },
            )
        })
        .collect()
}

fn cluster_once(
    cfg: ModelConfig,
    n_replicas: usize,
    policy: Policy,
    cap: usize,
    flat_slots: usize,
    block_size: usize,
    lcfg: &LoadGenConfig,
) -> Cluster<CpuBackend> {
    let mut cluster = Cluster::new(
        replicas(cfg, n_replicas, flat_slots, block_size),
        ClusterConfig {
            policy,
            max_outstanding_tokens: cap,
            ..ClusterConfig::default()
        },
    );
    cluster.run(&mut LoadGen::new(lcfg));
    cluster
}

/// Mean arrival→first-token latency in cluster ticks.
fn mean_ttft(cluster: &Cluster<CpuBackend>) -> f64 {
    let (sum, n) = cluster
        .completions()
        .iter()
        .filter_map(|c| c.first_token.map(|ft| ft.saturating_sub(c.arrival)))
        .fold((0u64, 0u64), |(s, n), t| (s + t, n + 1));
    sum as f64 / (n as f64).max(1.0)
}

/// A backpressure cap of about two max-size requests per replica: under
/// it, overload waits at the *router*, where queueing is visible in
/// cluster ticks — that is what the replica-scaling table measures.
const TIGHT_CAP: usize = 28;

fn print_ablation() {
    let (cfg, n, shared, bs) = if is_smoke() {
        (ModelConfig::test_tiny(), 24, 8, 4)
    } else {
        (ModelConfig::stories260k(), 48, 12, 4)
    };
    let flat_slots = 2;
    println!(
        "--- cluster scaling ablation ({cfg}, {n} requests, shared prefix {shared}, \
         KV budget = {flat_slots} x seq_len per replica) ---"
    );
    let lcfg = workload(cfg, n, shared);
    for n_replicas in [1usize, 2, 4, 8] {
        let r = cluster_once(
            cfg,
            n_replicas,
            Policy::Prefix,
            TIGHT_CAP,
            flat_slots,
            bs,
            &lcfg,
        )
        .report();
        println!(
            "replicas {n_replicas}: {:>8.3} tok/ktick, ttft p99 {:>4} ticks, \
             e2e p99 {:>4} ticks, prefix hits {:>4.1}%",
            r.tokens as f64 / (r.makespan as f64).max(1.0) * 1000.0,
            r.ttft.p99,
            r.e2e.p99,
            r.router.prefix_hit_rate() * 100.0,
        );
    }
    // The policy comparison runs uncapped at a gentler arrival rate and
    // a wide cluster: with headroom everywhere the router has a genuine
    // choice, so prefix placement pays ONE cold prefill and then chases
    // the single warm replica, while round-robin pays a cold prefill per
    // replica it scatters the shared prefix across.
    println!("--- placement policy at 8 replicas (uncapped, mean gap 4) ---");
    let light = LoadGenConfig {
        mode: ArrivalMode::Open {
            mean_interarrival: 4,
        },
        ..lcfg.clone()
    };
    let mut digests = Vec::new();
    for policy in [Policy::Prefix, Policy::LeastLoaded, Policy::RoundRobin] {
        let c = cluster_once(cfg, 8, policy, usize::MAX, flat_slots, bs, &light);
        let r = c.report();
        digests.push(r.digest);
        println!(
            "{:<13} ttft mean {:>4.1} / p95 {:>3} ticks, prefix hits {:>4.1}%",
            format!("{policy}:"),
            mean_ttft(&c),
            r.ttft.p95,
            r.router.prefix_hit_rate() * 100.0,
        );
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "routing policy must not change the emitted token streams"
    );
    println!("-----------------------------------------------------------------------");
}

fn bench_cluster(c: &mut Runner) {
    print_ablation();
    let cfg = ModelConfig::test_tiny();
    let lcfg = workload(cfg, 12, 4);
    for n_replicas in [1usize, 2, 4, 8] {
        c.set_meta("replicas", &n_replicas.to_string());
        c.set_meta("policy", "prefix");
        c.bench_function(&format!("ablation/cluster_replicas_{n_replicas}"), |b| {
            b.iter(|| {
                black_box(
                    cluster_once(cfg, n_replicas, Policy::Prefix, TIGHT_CAP, 2, 4, &lcfg)
                        .report()
                        .tokens,
                )
            })
        });
    }
    for policy in [Policy::Prefix, Policy::RoundRobin] {
        c.set_meta("replicas", "8");
        c.set_meta("policy", policy.name());
        c.bench_function(
            &format!(
                "ablation/cluster_policy_{}",
                policy.name().replace('-', "_")
            ),
            |b| {
                b.iter(|| {
                    black_box(
                        cluster_once(cfg, 8, policy, usize::MAX, 2, 4, &lcfg)
                            .report()
                            .tokens,
                    )
                })
            },
        );
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(10);
    bench_cluster(&mut c);
    c.finish();
}
