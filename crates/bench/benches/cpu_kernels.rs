//! Substrate microbenchmarks: the CPU reference kernels at stories15M
//! dimensions — serial vs scoped-thread matvec, RMSNorm, softmax, RoPE —
//! plus a full reference forward step.

use speedllm_bench::harness::Runner;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::forward::{MatVecStrategy, Transformer};
use speedllm_llama::ops;
use speedllm_llama::parallel::par_matvec;
use speedllm_llama::rng::Xoshiro256;
use speedllm_llama::weights::TransformerWeights;
use std::hint::black_box;

fn bench_kernels(c: &mut Runner) {
    let cfg = ModelConfig::stories15m();
    let (rows, cols) = (cfg.hidden_dim, cfg.dim);
    let mut rng = Xoshiro256::seed_from_u64(1);
    let mut w = vec![0.0f32; rows * cols];
    let mut x = vec![0.0f32; cols];
    rng.fill_normal(&mut w, 0.02);
    rng.fill_normal(&mut x, 1.0);
    let mut out = vec![0.0f32; rows];

    c.bench_function("cpu/matvec_serial_768x288", |b| {
        b.iter(|| {
            ops::matvec(black_box(&mut out), &w, &x, rows, cols);
            black_box(out[0])
        })
    });
    c.bench_function("cpu/matvec_par4_768x288", |b| {
        b.iter(|| {
            par_matvec(black_box(&mut out), &w, &x, rows, cols, 4);
            black_box(out[0])
        })
    });

    // Classifier-sized matvec is the big one: vocab x dim.
    let vrows = cfg.vocab_size;
    let mut wv = vec![0.0f32; vrows * cols];
    rng.fill_normal(&mut wv, 0.02);
    let mut vout = vec![0.0f32; vrows];
    c.bench_function("cpu/matvec_serial_32000x288", |b| {
        b.iter(|| {
            ops::matvec(black_box(&mut vout), &wv, &x, vrows, cols);
            black_box(vout[0])
        })
    });
    c.bench_function("cpu/matvec_par_32000x288", |b| {
        let threads = speedllm_llama::parallel::recommended_threads();
        b.iter(|| {
            par_matvec(black_box(&mut vout), &wv, &x, vrows, cols, threads);
            black_box(vout[0])
        })
    });

    let gain = vec![1.0f32; cols];
    let mut nbuf = x.clone();
    c.bench_function("cpu/rmsnorm_288", |b| {
        b.iter(|| {
            ops::rmsnorm(black_box(&mut nbuf), &x, &gain);
            black_box(nbuf[0])
        })
    });

    let mut sm = vec![0.0f32; 256];
    rng.fill_normal(&mut sm, 1.0);
    c.bench_function("cpu/softmax_256", |b| {
        let src = sm.clone();
        b.iter(|| {
            sm.copy_from_slice(&src);
            ops::softmax(black_box(&mut sm));
            black_box(sm[0])
        })
    });

    let mut q = x.clone();
    c.bench_function("cpu/rope_288", |b| {
        b.iter(|| {
            ops::rope_inplace(black_box(&mut q), 17, cfg.head_dim(), ops::ROPE_THETA);
            black_box(q[0])
        })
    });

    // Full reference decode step on stories260K (15M is too slow for tight
    // bench loops in CI).
    let weights = TransformerWeights::synthetic(ModelConfig::stories260k(), 42);
    let mut serial = Transformer::new(weights.clone());
    let mut parallel = Transformer::new(weights);
    parallel.set_strategy(MatVecStrategy::Parallel { threads: 4 });
    let mut pos = 0usize;
    c.bench_function("cpu/forward_260k_serial", |b| {
        b.iter(|| {
            let l = serial.forward(black_box(3), pos % 500);
            pos += 1;
            black_box(l[0])
        })
    });
    let mut pos2 = 0usize;
    c.bench_function("cpu/forward_260k_par4", |b| {
        b.iter(|| {
            let l = parallel.forward(black_box(3), pos2 % 500);
            pos2 += 1;
            black_box(l[0])
        })
    });
}

fn main() {
    let mut c = Runner::from_env().sample_size(30);
    bench_kernels(&mut c);
    c.finish();
}
