//! Timing bench behind **Fig 2(b)**: the energy-efficiency series is
//! printed once (the figure's data); the harness then measures the energy
//! model's evaluation cost on realistic per-inference stats.

use speedllm_bench::harness::Runner;
use speedllm_bench::{fig2b_workload, headline_preset, run_paper_variants};
use speedllm_fpga_sim::power::PowerModel;
use std::hint::black_box;

fn bench_energy(c: &mut Runner) {
    println!("--- Fig 2(b) series (tokens per joule, stories15M story-128) ---");
    let ms = run_paper_variants(&headline_preset(), &fig2b_workload());
    let ours = speedllm_bench::find(&ms, "SpeedLLM (ours)");
    for m in &ms {
        println!(
            "{:<16} {:>8.0} tok/J   (ours/this = {:.2}x)",
            m.variant,
            m.tokens_per_joule(),
            ours.tokens_per_joule() / m.tokens_per_joule()
        );
    }
    println!("-----------------------------------------------------------------");

    let stats = ms[0].report.stats;
    let pm = PowerModel::u280();
    c.set_meta("config", "stories15m");
    c.set_meta("variant", "full");
    c.bench_function("fig2b/energy_model", |b| {
        b.iter(|| black_box(pm.energy(black_box(&stats)).total_j()))
    });
}

fn main() {
    let mut c = Runner::from_env();
    bench_energy(&mut c);
    c.finish();
}
