//! Ablation bench for the **memory-reuse pool sizing** (DESIGN.md §4):
//! sweeps the on-chip activation pool and prints high-water mark and HBM
//! overflow, then bench-measures the planner.

use speedllm_accel::fusion::fuse;
use speedllm_accel::ir::build_decode_graph;
use speedllm_accel::memplan::{plan, plan_with_strategy, AllocStrategy};
use speedllm_bench::harness::Runner;
use speedllm_llama::config::ModelConfig;
use std::hint::black_box;

fn print_ablation() {
    println!("--- reuse-pool sizing ablation (stories15M) ---");
    let graph = build_decode_graph(&ModelConfig::stories15m());
    let schedule = fuse(&graph, true);
    for pool in [16u64 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20] {
        let p = plan(&graph, &schedule, true, pool);
        println!(
            "pool {:>8} B: high-water {:>7} B, {} values on-chip, {} overflow to HBM ({} B)",
            pool,
            p.ocm_high_water,
            p.ocm_values(),
            p.overflowed,
            p.hbm_activation_bytes
        );
    }
    // Strategy comparison at the shipped pool size.
    for (name, strat) in [
        ("first-fit", AllocStrategy::FirstFit),
        ("best-fit", AllocStrategy::BestFit),
    ] {
        let p = plan_with_strategy(&graph, &schedule, true, 2 << 20, strat);
        println!(
            "strategy {name:<9}: high-water {:>7} B over {} allocations",
            p.ocm_high_water, p.ocm_allocs
        );
    }
    // Contrast: reuse disabled.
    let naive = plan(&graph, &schedule, false, 2 << 20);
    println!(
        "reuse OFF       : {} values in HBM ({} B of round-trips)",
        naive.hbm_values(),
        naive.hbm_activation_bytes
    );
    println!("------------------------------------------------");
}

fn bench_planner(c: &mut Runner) {
    print_ablation();
    let graph = build_decode_graph(&ModelConfig::stories15m());
    let schedule = fuse(&graph, true);
    c.bench_function("ablation/memplan_reuse_15m", |b| {
        b.iter(|| black_box(plan(&graph, &schedule, true, 2 << 20).ocm_high_water))
    });
    c.bench_function("ablation/memplan_naive_15m", |b| {
        b.iter(|| black_box(plan(&graph, &schedule, false, 2 << 20).hbm_values()))
    });
}

fn main() {
    let mut c = Runner::from_env();
    bench_planner(&mut c);
    c.finish();
}
