//! Ablation bench for **chunked prefill** (extension beyond the paper):
//! prints prefill latency vs chunk length (weight-stream amortization) and
//! bench-measures the chunked engine pass.

use speedllm_accel::engine::{AccelConfig, Engine};
use speedllm_accel::opt::OptConfig;
use speedllm_bench::harness::Runner;
use speedllm_llama::config::ModelConfig;
use speedllm_llama::weights::TransformerWeights;
use std::hint::black_box;
use std::sync::Arc;

fn print_ablation() {
    println!("--- chunked-prefill ablation (stories260K, 32-token prompt) ---");
    let weights = Arc::new(TransformerWeights::synthetic(
        ModelConfig::stories260k(),
        42,
    ));
    let tokens: Vec<u32> = (0..32).map(|i| 5 + i as u32).collect();
    let mut base_cycles = 0u64;
    for chunk in [1usize, 2, 4, 8, 16, 32] {
        let mut engine = Engine::with_config(
            Arc::clone(&weights),
            OptConfig::full(),
            AccelConfig::for_opt(&OptConfig::full()),
        )
        .unwrap();
        let mut cycles = 0u64;
        let mut reads = 0u64;
        let mut pos = 0usize;
        while pos < tokens.len() {
            let end = (pos + chunk).min(tokens.len());
            let r = engine.prefill_chunk(&tokens[pos..end], pos);
            cycles += r.cycles.0;
            reads += r.stats.hbm.read_bytes;
            pos = end;
        }
        if chunk == 1 {
            base_cycles = cycles;
        }
        println!(
            "chunk {chunk:>2}: {cycles:>8} cycles ({:.2}x), {reads:>9} B HBM read",
            base_cycles as f64 / cycles as f64
        );
    }
    println!("----------------------------------------------------------------");
}

fn bench_prefill(c: &mut Runner) {
    print_ablation();
    let weights = Arc::new(TransformerWeights::synthetic(
        ModelConfig::stories260k(),
        42,
    ));
    let tokens: Vec<u32> = (0..16).map(|i| 5 + i as u32).collect();
    for chunk in [1usize, 16] {
        let mut engine = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        c.bench_function(&format!("ablation/prefill_chunk_{chunk}"), |b| {
            b.iter(|| {
                engine.reset();
                let mut pos = 0usize;
                let mut total = 0u64;
                while pos < tokens.len() {
                    let end = (pos + chunk).min(tokens.len());
                    total += engine
                        .prefill_chunk(black_box(&tokens[pos..end]), pos)
                        .cycles
                        .0;
                    pos = end;
                }
                black_box(total)
            })
        });
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(20);
    bench_prefill(&mut c);
    c.finish();
}
