//! Ablation bench for the **paged KV cache with radix prefix sharing**
//! (extension beyond the paper, DESIGN.md §12): serves the same seeded
//! closed-loop shared-prefix workload through the accelerator backend
//! twice at the *same total KV budget* — once as a flat slot pool (one
//! full `seq_len` reservation per admitted request), once paged with the
//! radix prefix cache. The paged run prefills the shared prompt blocks
//! once, so TTFT drops and more sequences fit in flight. The bench
//! target times one full paged serve run on the simulator.

use speedllm_accel::engine::Engine;
use speedllm_accel::opt::OptConfig;
use speedllm_bench::harness::{is_smoke, Runner};
use speedllm_llama::config::ModelConfig;
use speedllm_llama::sampler::SamplerKind;
use speedllm_llama::weights::TransformerWeights;
use speedllm_pagedkv::BlockConfig;
use speedllm_serve::{
    AccelBackend, ArrivalMode, Completion, LoadGen, LoadGenConfig, ServeConfig, ServeEngine,
    ServeReport,
};
use std::hint::black_box;
use std::sync::Arc;

/// Closed-loop workload where every prompt opens with `shared` common
/// tokens (the "system prompt") before its unique tail.
fn workload(cfg: ModelConfig, n_requests: usize, shared: usize) -> LoadGenConfig {
    LoadGenConfig {
        n_requests,
        mode: ArrivalMode::Closed { concurrency: 6 },
        prompt_len: (shared + 2, shared + 4),
        shared_prefix_len: shared,
        max_new_tokens: (2, 6),
        sampler: SamplerKind::Temperature(0.8),
        stop_at_eos: true,
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        seed: 42,
    }
}

struct Outcome {
    report: ServeReport,
    mean_ttft: f64,
    max_active: usize,
}

fn mean_ttft(done: &[Completion]) -> f64 {
    let (sum, n) = done
        .iter()
        .filter_map(Completion::ttft)
        .fold((0u64, 0u64), |(s, n), t| (s + t, n + 1));
    sum as f64 / (n as f64).max(1.0)
}

/// One serve run at a fixed KV budget of `flat_slots * seq_len` tokens.
/// `paged: false` spends it as `flat_slots` monolithic slots; `paged:
/// true` spends the identical budget as a block arena (a slot is then
/// just a table, so the pool is sized by blocks, not slots).
fn serve_once(
    weights: &Arc<TransformerWeights>,
    paged: bool,
    flat_slots: usize,
    block_size: usize,
    lcfg: &LoadGenConfig,
) -> Outcome {
    let engine = Engine::new(Arc::clone(weights), OptConfig::full()).unwrap();
    let n_blocks = flat_slots * weights.config.seq_len.div_ceil(block_size);
    let (backend, slots) = if paged {
        let bc = BlockConfig {
            block_size,
            n_blocks,
        };
        (AccelBackend::new_paged(engine, bc), n_blocks)
    } else {
        (AccelBackend::new(engine), flat_slots)
    };
    let mut serve = ServeEngine::new(
        backend,
        ServeConfig {
            slots,
            max_batch: 8,
            prefill_chunk: 16,
            queue_cap: 64,
            unified: None,
        },
    );
    let completions = serve.run_with_source(&mut LoadGen::new(lcfg));
    Outcome {
        mean_ttft: mean_ttft(&completions),
        max_active: serve.stats().max_active_observed,
        report: ServeReport::from_run(&completions, serve.stats(), serve.slot_reuses()),
    }
}

fn print_ablation() {
    let (cfg, n, shared, bs) = if is_smoke() {
        (ModelConfig::test_tiny(), 8, 8, 4)
    } else {
        (ModelConfig::stories260k(), 24, 16, 8)
    };
    let flat_slots = 2;
    println!(
        "--- prefix-cache ablation ({cfg}, {n} requests, shared prefix {shared}, \
         KV budget = {flat_slots} x seq_len) ---"
    );
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 42));
    let lcfg = workload(cfg, n, shared);
    for paged in [false, true] {
        let o = serve_once(&weights, paged, flat_slots, bs, &lcfg);
        println!(
            "{:<9} mean ttft {:>7.1} ticks, max active {:>2}, {:>8.3} tok/ktick, \
             prefix hits {:>3} tok, preemptions {}",
            if paged { "paged:" } else { "slot-pool:" },
            o.mean_ttft,
            o.max_active,
            o.report.tokens_per_kilotick,
            o.report.stats.prefix_hit_tokens,
            o.report.stats.preemptions,
        );
    }
    println!("-----------------------------------------------------------------------");
}

fn bench_prefix_cache(c: &mut Runner) {
    print_ablation();
    let cfg = ModelConfig::test_tiny();
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 42));
    let lcfg = workload(cfg, 8, 8);
    for (name, paged) in [("slot_pool", false), ("paged_radix", true)] {
        c.bench_function(&format!("ablation/serve_prefix_cache_{name}"), |b| {
            b.iter(|| black_box(serve_once(&weights, paged, 2, 4, &lcfg).report.tokens))
        });
    }
}

fn main() {
    let mut c = Runner::from_env().sample_size(10);
    bench_prefix_cache(&mut c);
    c.finish();
}
