//! End-to-end smoke tests for every `repro-*` binary: each must run on the
//! tiny (`SPEEDLLM_TINY=1`) config grid and emit parseable output. This is
//! what keeps the artifact-evaluation entry points from bit-rotting between
//! full reproduction runs.

use std::path::Path;
use std::process::Command;

fn run_bin(exe: &str, args: &[&str]) -> String {
    let out = Command::new(exe)
        .args(args)
        .env("SPEEDLLM_TINY", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("repro output must be UTF-8")
}

#[test]
fn repro_fig2a_runs_and_reports_speedups() {
    let out = run_bin(env!("CARGO_BIN_EXE_repro-fig2a"), &[]);
    assert!(out.contains("Fig 2(a)"), "missing banner:\n{out}");
    // Tiny workload grid rows plus the model-size sweep must be present,
    // each with a parseable "N.NNx" speedup cell.
    for needle in ["chat-short", "story-8", "test-tiny", "stories260K"] {
        assert!(out.contains(needle), "missing {needle} row:\n{out}");
    }
    let speedups: Vec<f64> = out
        .split_whitespace()
        .filter_map(|w| w.strip_suffix('x'))
        .filter_map(|w| w.parse().ok())
        .collect();
    assert!(!speedups.is_empty(), "no parseable speedup cells:\n{out}");
    assert!(speedups.iter().all(|s| s.is_finite() && *s > 0.0));
}

#[test]
fn repro_fig2b_runs_and_reports_all_variants() {
    let out = run_bin(env!("CARGO_BIN_EXE_repro-fig2b"), &[]);
    assert!(out.contains("Fig 2(b)"), "missing banner:\n{out}");
    for variant in ["SpeedLLM (ours)", "no-fuse", "no-parallel", "unoptimized"] {
        assert!(out.contains(variant), "missing variant {variant}:\n{out}");
    }
    assert!(
        out.contains("tokens/J"),
        "missing efficiency column:\n{out}"
    );
}

#[test]
fn repro_cost_runs() {
    let out = run_bin(env!("CARGO_BIN_EXE_repro-cost"), &[]);
    assert!(
        out.contains("U280"),
        "cost table must mention the paper's FPGA:\n{out}"
    );
}

#[test]
fn repro_extensions_runs() {
    let out = run_bin(env!("CARGO_BIN_EXE_repro-extensions"), &[]);
    assert!(!out.trim().is_empty());
}

#[test]
fn repro_csv_emits_wellformed_csv_files() {
    let outdir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("repro-csv-smoke");
    let _ = std::fs::remove_dir_all(&outdir);
    run_bin(env!("CARGO_BIN_EXE_repro-csv"), &[outdir.to_str().unwrap()]);
    let mut n_files = 0;
    for entry in std::fs::read_dir(&outdir).expect("outdir must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        n_files += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_else(|| panic!("{path:?} is empty"));
        let cols = header.split(',').count();
        assert!(cols >= 2, "{path:?} header has {cols} column(s)");
        let mut rows = 0;
        for line in lines {
            assert_eq!(
                line.split(',').count(),
                cols,
                "{path:?} row has wrong arity: {line}"
            );
            rows += 1;
        }
        assert!(rows >= 1, "{path:?} has a header but no data rows");
    }
    assert!(
        n_files >= 3,
        "expected several CSV artifacts, got {n_files}"
    );
}

#[test]
fn repro_all_chains_every_experiment() {
    // repro-all execs its sibling binaries from its own directory; the
    // tiny-mode env must propagate to those children.
    let out = run_bin(env!("CARGO_BIN_EXE_repro-all"), &[]);
    assert!(out.contains("Fig 2(a)"), "child repro-fig2a output missing");
    assert!(out.contains("Fig 2(b)"), "child repro-fig2b output missing");
    assert!(
        out.contains("all reproductions complete."),
        "missing completion line:\n{out}"
    );
}
