//! Log-linear latency histograms (HDR-style).
//!
//! Values are bucketed by magnitude: each power of two splits into
//! [`SUB_BUCKETS`] linear sub-buckets, so the relative quantile error is
//! bounded by `1/SUB_BUCKETS` (6.25%) across the full `u64` range while
//! the whole histogram stays under 8 KiB. Histograms merge by bucketwise
//! addition, which makes them safe to accumulate across threads, runs,
//! and bench samples.

/// log2 of the linear sub-buckets per power of two.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two (16).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Bucket count: values `< SUB_BUCKETS` get exact unit buckets, then each
/// of the remaining `64 - SUB_BITS` exponents contributes `SUB_BUCKETS`.
const BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS) as u64 * SUB_BUCKETS) as usize;

/// Maps a value to its bucket index. Exact for `v < 16`; above that, the
/// top [`SUB_BITS`]+1 significant bits select the bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let sub = (v >> (e - SUB_BITS)) - SUB_BUCKETS;
    (SUB_BUCKETS as u32 + (e - SUB_BITS) * SUB_BUCKETS as u32 + sub as u32) as usize
}

/// Largest value a bucket can hold; quantiles report this bound so a
/// sequence of quantile queries is monotone by construction.
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let e = (i - SUB_BUCKETS) / SUB_BUCKETS + SUB_BITS as u64;
    let sub = (i - SUB_BUCKETS) % SUB_BUCKETS + SUB_BUCKETS;
    // All values in the bucket share the top bits `sub` at exponent `e`;
    // the upper bound fills the low bits with ones. u128 because the top
    // bucket's bound exceeds u64::MAX.
    let up = ((u128::from(sub) + 1) << (e - u64::from(SUB_BITS))) - 1;
    up.min(u128::from(u64::MAX)) as u64
}

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self` (bucketwise).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the observed max. Monotone in `q`; within `1/SUB_BUCKETS` of exact.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// One-struct summary of the distribution.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Snapshot of a [`LogHistogram`]'s headline statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Minimum sample.
    pub min: u64,
    /// Maximum sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 95th percentile (upper bucket bound).
    pub p95: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_sixteen() {
        for v in 0..SUB_BUCKETS {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_upper(i), v, "unit bucket {v} must be exact");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut probes: Vec<u64> = Vec::new();
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            probes.extend([v, v + 1, v + v / 2]);
            v *= 2;
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut prev = 0usize;
        for probe in probes {
            let i = bucket_index(probe);
            assert!(i >= prev, "index must not decrease at {probe}");
            assert!(i < BUCKETS);
            assert!(
                bucket_upper(i) >= probe,
                "upper({i})={} < value {probe}",
                bucket_upper(i)
            );
            prev = i;
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Upper bound overestimates by at most one sub-bucket width.
        for &v in &[17u64, 100, 1_000, 123_456, 1 << 40, u64::MAX / 3] {
            let up = bucket_upper(bucket_index(v));
            assert!(up >= v);
            assert!(
                (up - v) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0,
                "v={v} up={up}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LogHistogram::new();
        // Deterministic LCG so the test needs no RNG dependency.
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> 40); // ~24-bit latencies
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {vals:?}");
        }
        let s = h.summary();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.min <= s.p50);
    }

    #[test]
    fn merge_is_associative_and_matches_bulk() {
        let feed = |h: &mut LogHistogram, lo: u64, hi: u64| {
            for v in lo..hi {
                h.record(v * v % 100_003);
            }
        };
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        feed(&mut a, 0, 300);
        feed(&mut b, 300, 700);
        feed(&mut c, 700, 1000);

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // direct bulk feed
        let mut bulk = LogHistogram::new();
        feed(&mut bulk, 0, 1000);

        for trio in [(&left, &right), (&left, &bulk)] {
            assert_eq!(trio.0.count(), trio.1.count());
            assert_eq!(trio.0.sum(), trio.1.sum());
            assert_eq!(trio.0.min(), trio.1.min());
            assert_eq!(trio.0.max(), trio.1.max());
            for q in [0.1, 0.5, 0.9, 0.99] {
                assert_eq!(trio.0.quantile(q), trio.1.quantile(q));
            }
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        let s = h.summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
    }
}
