//! Global metrics registry: counters, gauges, latency histograms.
//!
//! Keyed by `&'static str` so the hot path never allocates a name. Every
//! entry point is gated on [`crate::enabled`] and returns before touching
//! the registry lock when telemetry is off.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::histogram::{HistogramSummary, LogHistogram};

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry(f: impl FnOnce(&mut Registry)) {
    let mut guard = REGISTRY.lock().expect("metrics registry poisoned");
    f(guard.get_or_insert_with(Registry::default));
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| *r.counters.entry(name).or_insert(0) += delta);
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name, value);
    });
}

/// Records `value` into the named latency histogram.
pub fn observe(name: &'static str, value: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| r.histograms.entry(name).or_default().record(value));
}

/// Merges a locally-built histogram into the named global one. Lets hot
/// loops batch samples without taking the registry lock per sample.
pub fn merge_histogram(name: &'static str, local: &LogHistogram) {
    if !crate::enabled() || local.count() == 0 {
        return;
    }
    with_registry(|r| r.histograms.entry(name).or_default().merge(local));
}

/// Point-in-time copy of the whole registry, sorted by name.
#[derive(Default, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Captures the current registry contents. Works even when collection has
/// since been disabled — the data is whatever was recorded while on.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let guard = REGISTRY.lock().expect("metrics registry poisoned");
    let Some(r) = guard.as_ref() else {
        return MetricsSnapshot::default();
    };
    MetricsSnapshot {
        counters: r.counters.iter().map(|(k, v)| (*k, *v)).collect(),
        gauges: r.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(k, h)| (*k, h.summary()))
            .collect(),
    }
}

/// Clears every counter, gauge, and histogram.
pub fn reset() {
    *REGISTRY.lock().expect("metrics registry poisoned") = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let _serial = crate::TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);

        counter_add("fusion.hits", 2);
        counter_add("fusion.hits", 3);
        gauge_set("memplan.ocm_values", 7.0);
        gauge_set("memplan.ocm_values", 9.0);
        for v in [10, 20, 30, 40] {
            observe("lat", v);
        }
        let mut local = LogHistogram::new();
        local.record(50);
        merge_histogram("lat", &local);

        let snap = snapshot();
        assert_eq!(snap.counters, vec![("fusion.hits", 5)]);
        assert_eq!(snap.gauges, vec![("memplan.ocm_values", 9.0)]);
        assert_eq!(snap.histograms.len(), 1);
        let (name, s) = snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 50);

        crate::set_enabled(false);
        counter_add("fusion.hits", 100);
        assert_eq!(snapshot().counters, vec![("fusion.hits", 5)]);
        crate::reset();
        assert!(snapshot().is_empty());
    }
}
