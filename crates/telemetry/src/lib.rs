//! # speedllm-telemetry
//!
//! The measurement substrate of the reproduction: a std-only (zero
//! dependency) tracing + metrics layer shared by the host inference path
//! (`speedllm-llama`), the accelerator runtime (`speedllm-accel`), the
//! device simulator (`speedllm-fpga-sim`), and the bench harness.
//!
//! Three pieces:
//!
//! * **Spans** ([`span`]) — RAII wall-time spans tagged with integer
//!   arguments (layer / op / token indices), collected thread-safely into
//!   a bounded global buffer. Worker threads (the dataflow pipeline, the
//!   matvec pool) record into the same collector.
//! * **Metrics** ([`metrics`]) — a global registry of counters, gauges,
//!   and log-bucketed latency histograms ([`histogram::LogHistogram`],
//!   HDR-style: mergeable, p50/p95/p99/max in bounded memory).
//! * **Exporters** ([`export`]) — JSONL, and the Chrome trace-event JSON
//!   format loadable in Perfetto / `chrome://tracing`. The simulator's
//!   cycle timeline (`fpga_sim::TraceBuffer`) renders into the same
//!   trace-event stream on its own process track, so simulated DMA/MPE/SFU
//!   overlap and real host spans sit side by side in one viewer.
//! * **Time series** ([`timeseries`]) — a bounded ring recorder for
//!   per-tick scheduler samples (the serve layer's
//!   `serve-bench --metrics-out`), exporting deterministic CSV/JSONL.
//!
//! ## Zero cost when disabled
//!
//! Collection is off by default and gated on one relaxed atomic load.
//! The disabled path allocates nothing: [`span`] hands back an inert
//! guard, and every metrics call returns before touching a lock. Enable
//! explicitly with [`set_enabled`] or via the `SPEEDLLM_TRACE` environment
//! variable ([`init_from_env`]).
//!
//! ```
//! use speedllm_telemetry as tel;
//!
//! tel::set_enabled(true);
//! {
//!     let _g = tel::span("host", "decode_token").arg("pos", 3);
//!     tel::metrics::observe("decode.token_latency_ns", 1200);
//! }
//! assert_eq!(tel::span_count(), 1);
//! let json = tel::export::chrome_trace_json(&tel::drain_spans(), None);
//! assert!(json.starts_with('['));
//! tel::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod metrics;
mod span;
pub mod timeseries;

pub use span::{span, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Master collection switch. Relaxed is enough: telemetry is advisory and
/// a late-visible toggle only costs a handful of spans.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Spans recorded after the buffer reached [`SPAN_CAPACITY`].
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Bounded span buffer: tracing can stay on through long runs without
/// unbounded memory, mirroring `fpga_sim::TraceBuffer`'s discipline.
pub const SPAN_CAPACITY: usize = 1 << 20;

static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// The instant all span timestamps are measured from (first enable).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// True when telemetry collection is active.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off. Enabling pins the timestamp epoch on first
/// use; disabling leaves already-collected data in place (drain or
/// [`reset`] to clear it).
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables collection when the `SPEEDLLM_TRACE` environment variable is
/// set to anything but `0`. Returns whether telemetry is now enabled.
pub fn init_from_env() -> bool {
    if std::env::var_os("SPEEDLLM_TRACE").is_some_and(|v| v != *"0") {
        set_enabled(true);
    }
    enabled()
}

/// Microseconds since the telemetry epoch (first enable).
#[must_use]
pub(crate) fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

pub(crate) fn push_span(record: SpanRecord) {
    let mut spans = SPANS.lock().expect("span buffer poisoned");
    if spans.len() < SPAN_CAPACITY {
        spans.push(record);
    } else {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Number of spans currently buffered.
#[must_use]
pub fn span_count() -> usize {
    SPANS.lock().expect("span buffer poisoned").len()
}

/// Spans dropped after the buffer filled.
#[must_use]
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Takes every buffered span, leaving the buffer empty.
#[must_use]
pub fn drain_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *SPANS.lock().expect("span buffer poisoned"))
}

/// Clears all collected state: spans, the dropped counter, and the global
/// metrics registry. The enabled flag is left as-is.
pub fn reset() {
    SPANS.lock().expect("span buffer poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
    metrics::reset();
}

/// Serializes unit tests that toggle the global enabled flag.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one collector; the TEST_LOCK keeps other
    // modules' enable/disable windows from interleaving with this one.
    #[test]
    fn gating_collection_and_drain() {
        let _serial = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(false);

        // Disabled: nothing is recorded, nothing allocated.
        {
            let _g = span("host", "ignored").arg("pos", 1);
            metrics::counter_add("ignored", 1);
            metrics::observe("ignored_hist", 5);
        }
        assert_eq!(span_count(), 0);
        assert!(metrics::snapshot().is_empty());

        // Enabled: spans and metrics land.
        set_enabled(true);
        {
            let _g = span("host", "decode_token").arg("pos", 7).arg("layer", 2);
        }
        {
            let _outer = span("host", "outer");
            let _inner = span("cpu", "inner");
        }
        metrics::counter_add("tokens", 3);
        assert_eq!(span_count(), 3);
        let spans = drain_spans();
        assert_eq!(span_count(), 0);
        let d = spans.iter().find(|s| s.name == "decode_token").unwrap();
        assert_eq!(d.track, "host");
        assert_eq!(d.args, vec![("pos", 7), ("layer", 2)]);
        assert!(d.dur_us >= 0.0);

        // Disable again and verify the gate closes.
        set_enabled(false);
        {
            let _g = span("host", "after");
        }
        assert_eq!(span_count(), 0);
        reset();
    }
}
