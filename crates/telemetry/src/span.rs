//! Wall-time spans with RAII guards.
//!
//! A span opens with [`span`] and closes when the returned [`SpanGuard`]
//! drops; the completed record lands in the global collector. Names and
//! tracks are `&'static str` so the disabled path performs no allocation
//! at all — variable data (token index, layer, position) travels in
//! integer arguments instead.

use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Track (Chrome "thread") the span renders on, e.g. `"host"`,
    /// `"cpu"`, `"dataflow.read"`.
    pub track: &'static str,
    /// Event name, e.g. `"decode_token"`.
    pub name: &'static str,
    /// Start, microseconds since the telemetry epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Integer tags (`("pos", 12)`, `("layer", 3)`, …), in insertion
    /// order.
    pub args: Vec<(&'static str, i64)>,
}

/// RAII guard returned by [`span`]; records on drop. Inert (no clock
/// read, no allocation) when telemetry was disabled at creation.
#[must_use = "a span measures the scope of its guard; bind it with `let _g = ...`"]
pub struct SpanGuard {
    // `None` when telemetry is disabled: the entire guard is inert.
    start: Option<Instant>,
    track: &'static str,
    name: &'static str,
    start_us: f64,
    args: Vec<(&'static str, i64)>,
}

/// Opens a span on `track` named `name`. When telemetry is disabled this
/// costs one relaxed atomic load and returns an inert guard.
pub fn span(track: &'static str, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            start: None,
            track,
            name,
            start_us: 0.0,
            args: Vec::new(),
        };
    }
    SpanGuard {
        start: Some(Instant::now()),
        track,
        name,
        start_us: crate::now_us(),
        args: Vec::new(),
    }
}

impl SpanGuard {
    /// Attaches an integer tag (builder style). No-op on inert guards.
    pub fn arg(mut self, key: &'static str, value: impl Into<i64>) -> Self {
        if self.start.is_some() {
            self.args.push((key, value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        crate::push_span(SpanRecord {
            track: self.track,
            name: self.name,
            start_us: self.start_us,
            dur_us: start.elapsed().as_secs_f64() * 1e6,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_guard_is_allocation_free() {
        let _serial = crate::TEST_LOCK.lock().unwrap();
        let was = crate::enabled();
        crate::set_enabled(false);
        // Not a heap profiler, but the structural claim holds: an inert
        // guard carries no Instant and an empty (unallocated) args vec.
        let g = span("t", "n").arg("k", 1);
        assert!(g.start.is_none());
        assert_eq!(g.args.capacity(), 0);
        crate::set_enabled(was);
    }
}
