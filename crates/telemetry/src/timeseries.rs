//! Fixed-capacity time-series recorder.
//!
//! [`TickSeries`] holds one row of named `f64` columns per sample tick in
//! a bounded ring buffer: when the buffer is full the **oldest** row is
//! overwritten, so a long run keeps its most recent window (the span
//! buffer drops newest instead — a trace wants the beginning, a
//! time-series wants the end). Rows render as CSV (header + rows) or
//! JSONL, both with deterministic number formatting so two identical runs
//! export byte-identical files.

use std::collections::VecDeque;

/// Bounded ring of time-series rows with static column names.
#[derive(Debug, Clone)]
pub struct TickSeries {
    columns: &'static [&'static str],
    rows: VecDeque<Vec<f64>>,
    capacity: usize,
    dropped: u64,
}

/// Formats an `f64` deterministically: integral values print without a
/// fraction (`3` not `3.0`), everything else uses Rust's shortest
/// round-trip form.
#[must_use]
pub fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl TickSeries {
    /// An empty series over `columns`, keeping at most `capacity` rows.
    ///
    /// # Panics
    /// Panics on an empty column set or zero capacity.
    #[must_use]
    pub fn new(columns: &'static [&'static str], capacity: usize) -> Self {
        assert!(!columns.is_empty(), "a series needs at least one column");
        assert!(capacity > 0, "a series needs room for at least one row");
        Self {
            columns,
            rows: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends one row; evicts the oldest row once full.
    ///
    /// # Panics
    /// Panics when the row width does not match the column set.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match the column set"
        );
        if self.rows.len() == self.capacity {
            self.rows.pop_front();
            self.dropped += 1;
        }
        self.rows.push_back(row.to_vec());
    }

    /// The column names.
    #[must_use]
    pub fn columns(&self) -> &'static [&'static str] {
        self.columns
    }

    /// Rows currently held (oldest first).
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Number of rows currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been recorded (or all were evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a CSV document: one header line, one line per row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&fmt_value(*v));
            }
            out.push('\n');
        }
        out
    }

    /// Renders JSONL: one `{"col":value,...}` object per row.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push('{');
            for (i, (col, v)) in self.columns.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":{}",
                    crate::export::json_escape(col),
                    fmt_value(*v)
                ));
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COLS: &[&str] = &["tick", "depth", "util"];

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut ts = TickSeries::new(COLS, 2);
        ts.push(&[1.0, 4.0, 0.5]);
        ts.push(&[2.0, 5.0, 0.25]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped(), 0);
        ts.push(&[3.0, 6.0, 1.0]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped(), 1);
        let first: Vec<f64> = ts.rows().next().unwrap().to_vec();
        assert_eq!(first, vec![2.0, 5.0, 0.25], "oldest row must be evicted");
    }

    #[test]
    fn csv_and_jsonl_are_deterministic_and_integer_exact() {
        let mut ts = TickSeries::new(COLS, 8);
        ts.push(&[1.0, 3.0, 0.5]);
        ts.push(&[10.0, 0.0, 0.125]);
        let csv = ts.to_csv();
        assert_eq!(csv, "tick,depth,util\n1,3,0.5\n10,0,0.125\n");
        let jsonl = ts.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"tick\":1,\"depth\":3,\"util\":0.5}\n{\"tick\":10,\"depth\":0,\"util\":0.125}\n"
        );
        assert_eq!(csv, ts.to_csv(), "export must be stable");
    }

    #[test]
    fn value_formatting_is_integral_when_exact() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(-3.0), "-3");
        assert_eq!(fmt_value(2.5), "2.5");
        assert_eq!(fmt_value(1_000_000.0), "1000000");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_is_rejected() {
        let mut ts = TickSeries::new(COLS, 2);
        ts.push(&[1.0]);
    }
}
