//! Trace and metrics exporters.
//!
//! Two formats, both hand-rolled (std-only, no serde):
//!
//! * **Chrome trace-event JSON** — the array-of-events form understood by
//!   Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Spans
//!   become `ph:"X"` complete events; tracks become named threads via
//!   `ph:"M"` metadata events. Multiple processes (host wall-time vs.
//!   simulator cycle-time) coexist in one file on distinct `pid`s.
//! * **JSONL** — one JSON object per line, for spans and for metrics
//!   snapshots embedded in bench output.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;

/// Chrome `pid` used for real host wall-time spans.
pub const HOST_PID: u32 = 1;
/// Chrome `pid` used for simulator cycle-timeline events.
pub const SIM_PID: u32 = 2;
/// Chrome `pid` used for the serve layer's virtual-tick request tracks.
pub const SERVE_PID: u32 = 3;

/// Longest string argument value embedded in a trace event, in chars;
/// longer values are clipped with a trailing `…` so one runaway string
/// (a prompt, a path) cannot bloat the trace file.
pub const MAX_STR_ARG: usize = 120;

/// Clips `s` to [`MAX_STR_ARG`] chars, marking truncation with `…`.
#[must_use]
pub fn clip_arg(s: &str) -> String {
    if s.chars().count() <= MAX_STR_ARG {
        return s.to_string();
    }
    let mut out: String = s.chars().take(MAX_STR_ARG.saturating_sub(1)).collect();
    out.push('…');
    out
}

/// Escapes `s` for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for a Chrome trace-event JSON array.
///
/// Events are appended in any order (the viewer sorts by timestamp);
/// [`finish`](Self::finish) closes the array.
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a process (a top-level group in the viewer).
    pub fn meta_process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Names a thread (one horizontal track in the viewer).
    pub fn meta_thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Appends a `ph:"X"` complete event. `ts_us`/`dur_us` are in
    /// microseconds (the trace-event unit).
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, i64)],
    ) {
        self.complete_ext(pid, tid, name, ts_us, dur_us, args, &[]);
    }

    /// Appends a `ph:"X"` complete event carrying integer **and** string
    /// arguments. String values are non-static (request text, phase
    /// labels): they are JSON-escaped and clipped to [`MAX_STR_ARG`]
    /// chars before embedding.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_ext(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, i64)],
        str_args: &[(&str, &str)],
    ) {
        let mut ev = format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us:.3},\"dur\":{dur_us:.3}",
            json_escape(name)
        );
        Self::push_args(&mut ev, args, str_args);
        ev.push('}');
        self.events.push(ev);
    }

    /// Appends a thread-scoped `ph:"i"` instant event (a vertical marker
    /// on its track). String arguments are escaped and clipped like
    /// [`complete_ext`](Self::complete_ext).
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        ts_us: f64,
        args: &[(&str, i64)],
        str_args: &[(&str, &str)],
    ) {
        let mut ev = format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us:.3}",
            json_escape(name)
        );
        Self::push_args(&mut ev, args, str_args);
        ev.push('}');
        self.events.push(ev);
    }

    /// Renders the shared `"args":{...}` suffix (integer keys first, then
    /// escaped/clipped strings); emits nothing when both sets are empty.
    fn push_args(ev: &mut String, args: &[(&str, i64)], str_args: &[(&str, &str)]) {
        if args.is_empty() && str_args.is_empty() {
            return;
        }
        ev.push_str(",\"args\":{");
        let mut first = true;
        for (k, v) in args {
            if !first {
                ev.push(',');
            }
            first = false;
            ev.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        for (k, v) in str_args {
            if !first {
                ev.push(',');
            }
            first = false;
            ev.push_str(&format!(
                "\"{}\":\"{}\"",
                json_escape(k),
                json_escape(&clip_arg(v))
            ));
        }
        ev.push('}');
    }

    /// Number of events appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the JSON array.
    #[must_use]
    pub fn finish(self) -> String {
        let mut out = String::from("[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

/// Adds host spans to `trace` under [`HOST_PID`], assigning one `tid` per
/// distinct track (in order of first appearance) with thread-name
/// metadata.
pub fn add_host_spans(trace: &mut ChromeTrace, spans: &[SpanRecord]) {
    if spans.is_empty() {
        return;
    }
    trace.meta_process_name(HOST_PID, "host (wall time)");
    let mut tracks: Vec<&'static str> = Vec::new();
    for s in spans {
        let tid = match tracks.iter().position(|t| *t == s.track) {
            Some(i) => i as u32,
            None => {
                tracks.push(s.track);
                let tid = (tracks.len() - 1) as u32;
                trace.meta_thread_name(HOST_PID, tid, s.track);
                tid
            }
        };
        trace.complete(HOST_PID, tid, s.name, s.start_us, s.dur_us, &s.args);
    }
}

/// Renders `spans` (plus an optional pre-populated trace, e.g. the
/// simulator timeline) as one Chrome trace-event JSON document.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord], base: Option<ChromeTrace>) -> String {
    let mut trace = base.unwrap_or_default();
    add_host_spans(&mut trace, spans);
    trace.finish()
}

/// Renders spans as JSONL: one object per line with track, name, start,
/// duration, and args.
#[must_use]
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&format!(
            "{{\"track\":\"{}\",\"name\":\"{}\",\"start_us\":{:.3},\"dur_us\":{:.3}",
            json_escape(s.track),
            json_escape(s.name),
            s.start_us,
            s.dur_us
        ));
        if !s.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{v}", json_escape(k)));
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    out
}

/// Renders a metrics snapshot as one JSON object (no trailing newline):
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}`.
#[must_use]
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, s)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
             \"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(k),
            s.count,
            s.min,
            s.max,
            s.mean,
            s.p50,
            s.p95,
            s.p99
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(track: &'static str, name: &'static str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            track,
            name,
            start_us: start,
            dur_us: dur,
            args: vec![("pos", 4)],
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = [
            rec("host", "prefill", 0.0, 10.0),
            rec("cpu", "matvec", 2.0, 3.0),
        ];
        let json = chrome_trace_json(&spans, None);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        // 1 process_name + 2 thread_name + 2 complete events.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":10.000"));
        assert!(json.contains("\"args\":{\"pos\":4}"));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn base_trace_is_preserved() {
        let mut base = ChromeTrace::new();
        base.meta_process_name(SIM_PID, "fpga-sim (cycles)");
        base.complete(SIM_PID, 0, "DMA", 0.0, 5.0, &[]);
        let json = chrome_trace_json(&[rec("host", "h", 0.0, 1.0)], Some(base));
        assert!(json.contains("fpga-sim (cycles)"));
        assert!(json.contains("\"name\":\"DMA\""));
        assert!(json.contains("\"name\":\"h\""));
    }

    #[test]
    fn jsonl_and_snapshot_render() {
        let line = spans_to_jsonl(&[rec("host", "x\"y", 1.0, 2.0)]);
        assert!(line.contains("\"name\":\"x\\\"y\""));
        assert_eq!(line.lines().count(), 1);

        let snap = MetricsSnapshot {
            counters: vec![("c", 3)],
            gauges: vec![("g", 1.5)],
            histograms: vec![],
        };
        let js = snapshot_to_json(&snap);
        assert_eq!(
            js,
            "{\"counters\":{\"c\":3},\"gauges\":{\"g\":1.5},\"histograms\":{}}"
        );
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn string_args_are_escaped_and_clipped() {
        let mut t = ChromeTrace::new();
        t.complete_ext(
            SERVE_PID,
            4,
            "queue",
            0.0,
            5.0,
            &[("req", 7)],
            &[("phase", "wait\"ing\n")],
        );
        let json = t.finish();
        // Integer args precede string args in one `args` object; the
        // string value is JSON-escaped.
        assert!(json.contains("\"args\":{\"req\":7,\"phase\":\"wait\\\"ing\\n\"}"));

        // An oversized value is clipped to MAX_STR_ARG chars ending in …
        let long = "x".repeat(MAX_STR_ARG * 2);
        let clipped = clip_arg(&long);
        assert_eq!(clipped.chars().count(), MAX_STR_ARG);
        assert!(clipped.ends_with('…'));
        // A value at the limit passes through untouched.
        let exact = "y".repeat(MAX_STR_ARG);
        assert_eq!(clip_arg(&exact), exact);

        let mut t = ChromeTrace::new();
        t.complete_ext(SERVE_PID, 0, "n", 0.0, 1.0, &[], &[("v", &long)]);
        let json = t.finish();
        assert!(json.contains('…'), "embedded oversized arg must be clipped");
        assert!(!json.contains(&long), "raw oversized arg must not leak");
    }

    #[test]
    fn instant_events_render_with_thread_scope() {
        let mut t = ChromeTrace::new();
        t.meta_thread_name(SERVE_PID, 2, "req 11");
        t.instant(SERVE_PID, 2, "first_token", 42.0, &[("tok", 1)], &[]);
        let json = t.finish();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ts\":42.000"));
        assert!(json.contains("\"name\":\"req 11\""));
        assert!(json.contains("\"args\":{\"tok\":1}"));
    }
}
