//! The harness RNG: SplitMix64.
//!
//! Chosen for its two-line core, full-period 64-bit state, and excellent
//! statistical quality for test-case generation. Determinism is the point:
//! the same seed always yields the same case sequence, so failures are
//! replayable with `TESTKIT_SEED=<seed>`.

/// A deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift reduction; bias is negligible for span << 2^64
        // and irrelevant for test-case generation.
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = TestRng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = TestRng::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
