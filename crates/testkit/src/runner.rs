//! The property runner: generate cases, detect failures, shrink, report.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Default base seed when neither [`Config::seed`] nor `TESTKIT_SEED` is
/// set. Fixed so runs are reproducible by default.
pub const DEFAULT_SEED: u64 = 0x5EED_C0DE_2025_0001;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on shrink candidate evaluations after a failure.
    pub max_shrink_iters: u32,
    /// Explicit base seed; `None` reads `TESTKIT_SEED`, falling back to
    /// [`DEFAULT_SEED`].
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 4096,
            seed: None,
        }
    }
}

impl Config {
    /// The base seed this configuration resolves to.
    #[must_use]
    pub fn resolved_seed(&self) -> u64 {
        if let Some(s) = self.seed {
            return s;
        }
        match std::env::var("TESTKIT_SEED") {
            Ok(v) => v
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("TESTKIT_SEED must be a u64, got {v:?}")),
            Err(_) => DEFAULT_SEED,
        }
    }
}

/// A failed property check, raised by [`prop_assert!`](crate::prop_assert)
/// and friends or returned directly from a property body via `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps any displayable reason.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        Self(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A property failure with its shrink history, as returned by [`run`].
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// Base seed of the run (what `TESTKIT_SEED` should be set to).
    pub seed: u64,
    /// Zero-based index of the failing case.
    pub case: u32,
    /// The originally generated counterexample.
    pub original: V,
    /// The shrunk (minimal surviving) counterexample.
    pub minimal: V,
    /// Number of successful shrink steps taken.
    pub shrink_steps: u32,
    /// The failure message of the minimal counterexample.
    pub message: String,
}

/// FNV-1a, used to give each property its own deterministic stream from
/// one base seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `prop` over `cfg.cases` generated values. On failure, shrinks the
/// counterexample and returns the [`Failure`]; the test harness wrapper
/// [`check`] panics with a replayable report instead.
pub fn run<S: Strategy>(
    cfg: &Config,
    name: &str,
    strat: &S,
    prop: impl Fn(S::Value) -> Result<(), TestCaseError>,
) -> Result<(), Box<Failure<S::Value>>> {
    let seed = cfg.resolved_seed();
    let mut rng = TestRng::new(seed ^ hash_name(name));
    for case in 0..cfg.cases {
        let value = strat.generate(&mut rng);
        if let Err(err) = prop(value.clone()) {
            let mut minimal = value.clone();
            let mut message = err.to_string();
            let mut shrink_steps = 0u32;
            let mut budget = cfg.max_shrink_iters;
            // Greedy descent: take the first simpler candidate that still
            // fails; stop when no candidate fails or the budget runs out.
            'descend: loop {
                for cand in strat.shrink(&minimal) {
                    if budget == 0 {
                        break 'descend;
                    }
                    budget -= 1;
                    if let Err(e) = prop(cand.clone()) {
                        minimal = cand;
                        message = e.to_string();
                        shrink_steps += 1;
                        continue 'descend;
                    }
                }
                break;
            }
            return Err(Box::new(Failure {
                seed,
                case,
                original: value,
                minimal,
                shrink_steps,
                message,
            }));
        }
    }
    Ok(())
}

/// [`run`], panicking on failure with a replayable report. This is what
/// the [`props!`](crate::props) macro expands to.
pub fn check<S: Strategy>(
    cfg: &Config,
    name: &str,
    strat: &S,
    prop: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    if let Err(f) = run(cfg, name, strat, prop) {
        panic!(
            "property `{name}` failed at case {case} of {cases}\n\
             minimal counterexample (after {steps} shrink steps): {minimal:?}\n\
             originally generated as: {original:?}\n\
             error: {message}\n\
             replay with: TESTKIT_SEED={seed} cargo test {name}",
            case = f.case,
            cases = cfg.cases,
            steps = f.shrink_steps,
            minimal = f.minimal,
            original = f.original,
            message = f.message,
            seed = f.seed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0u32);
        let cfg = Config {
            cases: 64,
            ..Config::default()
        };
        run(&cfg, "always_true", &(0u64..100), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        })
        .expect("property holds");
        assert_eq!(counted.get(), 64);
    }

    #[test]
    fn failing_property_reports_a_failure() {
        let cfg = Config {
            cases: 256,
            ..Config::default()
        };
        let f = run(&cfg, "never_big", &(0u64..1000), |v| {
            if v >= 500 {
                Err(TestCaseError::fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        })
        .expect_err("property must fail");
        assert!(f.minimal >= 500);
        assert!(f.message.contains("too big"));
    }

    #[test]
    #[should_panic(expected = "property `boom` failed")]
    fn check_panics_with_report() {
        let cfg = Config {
            cases: 16,
            ..Config::default()
        };
        check(&cfg, "boom", &(0u64..10), |_| {
            Err(TestCaseError::fail("no"))
        });
    }
}
