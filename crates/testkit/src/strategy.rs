//! Value generators with shrinking.
//!
//! A [`Strategy`] produces random values of one type and, given a failing
//! value, proposes *simpler* candidate values (shrinking). The runner
//! repeatedly replaces a counterexample with any simpler candidate that
//! still fails, converging on a minimal one.
//!
//! Built-in strategies mirror the `proptest` subset the repo's property
//! suite uses: half-open ranges over the common numeric types are
//! strategies themselves (`0u64..200`, `-100.0f32..100.0`), tuples of
//! strategies are strategies, and [`vec_of`] / the string constructors
//! cover collections.

use crate::rng::TestRng;

/// A generator of values plus a shrinker toward "simpler" values.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly simpler candidates for a failing value. An empty
    /// vector means the value is already minimal (or unshrinkable).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

// --- numeric ranges -------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let lo = self.start as i128;
                let hi = self.end as i128;
                (lo + rng.gen_range_u64(0, (hi - lo) as u64) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                if v <= lo {
                    return Vec::new();
                }
                // Toward the lower bound: the bound itself, the midpoint,
                // and one step down. Dedup preserves strict progress.
                let mid = lo + (v - lo) / 2;
                let mut out = vec![lo, mid, v - 1];
                out.dedup();
                out.retain(|&c| c < v);
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let v = self.start as f64
                    + rng.next_f64() * (self.end as f64 - self.start as f64);
                // Guard the half-open upper bound against rounding.
                (v as $t).clamp(self.start, <$t>::from_bits(self.end.to_bits() - 1))
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out: Vec<$t> = Vec::new();
                // Zero is the simplest float when the range admits it.
                if self.contains(&0.0) && v != 0.0 {
                    out.push(0.0);
                }
                if v != self.start {
                    out.push(self.start);
                    out.push(self.start + (v - self.start) / 2.0);
                }
                out.retain(|c| c != value && self.contains(c));
                out
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// --- any ------------------------------------------------------------------

/// Strategy over all of `bool` (see [`any_bool`]).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// Any boolean; `true` shrinks to `false`.
#[must_use]
pub fn any_bool() -> BoolAny {
    BoolAny
}

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy over all of `u64` (see [`any_u64`]).
#[derive(Debug, Clone, Copy)]
pub struct U64Any;

/// Any `u64`, including the extremes; shrinks toward zero.
#[must_use]
pub fn any_u64() -> U64Any {
    U64Any
}

impl Strategy for U64Any {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        // Mix magnitudes: small values surface edge cases far more often
        // than a uniform draw over 2^64 would.
        match rng.gen_range_u64(0, 4) {
            0 => rng.gen_range_u64(0, 16),
            1 => rng.gen_range_u64(0, 1 << 16),
            _ => rng.next_u64(),
        }
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        if v == 0 {
            return Vec::new();
        }
        let mut out = vec![0, v / 2, v - 1];
        out.dedup();
        out.retain(|&c| c < v);
        out
    }
}

// --- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($S:ident / $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// --- collections ----------------------------------------------------------

/// Strategy for `Vec<T>` (see [`vec_of`]).
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// A vector whose length is drawn from `len` and whose elements come from
/// `elem`. Shrinks by dropping elements (never below `len.start`) and by
/// shrinking individual elements.
#[must_use]
pub fn vec_of<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "empty length range");
    VecOf { elem, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Structural shrinks first: shorter vectors are simpler than
        // same-length vectors with simpler elements.
        if value.len() > min {
            let half = (value.len() / 2).max(min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        for (i, v) in value.iter().enumerate() {
            for cand in self.elem.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

// --- strings --------------------------------------------------------------

/// Character alphabets for [`StringStrat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alphabet {
    /// `[ -~]`: every printable ASCII character, space included.
    PrintableAscii,
    /// `[a-z]`.
    Lowercase,
    /// Printable characters across several Unicode blocks (an assigned,
    /// non-control approximation of `\PC`).
    Unicode,
}

/// Strategy for `String` over a fixed alphabet and length range.
#[derive(Debug, Clone)]
pub struct StringStrat {
    alphabet: Alphabet,
    len: std::ops::Range<usize>,
}

/// Strings of printable ASCII (`[ -~]`), `len` characters long.
#[must_use]
pub fn printable_ascii(len: std::ops::Range<usize>) -> StringStrat {
    StringStrat {
        alphabet: Alphabet::PrintableAscii,
        len,
    }
}

/// Strings of `[a-z]`, `len` characters long.
#[must_use]
pub fn lowercase(len: std::ops::Range<usize>) -> StringStrat {
    StringStrat {
        alphabet: Alphabet::Lowercase,
        len,
    }
}

/// Strings of printable Unicode drawn from several blocks (ASCII, Latin-1
/// letters, Greek, Cyrillic, Hiragana, CJK, symbols, emoji), `len`
/// characters long.
#[must_use]
pub fn unicode(len: std::ops::Range<usize>) -> StringStrat {
    StringStrat {
        alphabet: Alphabet::Unicode,
        len,
    }
}

/// Unicode blocks sampled by [`unicode`]; all code points are assigned,
/// printable, non-control characters.
const UNICODE_BLOCKS: &[(u32, u32)] = &[
    (0x0020, 0x007F),   // printable ASCII
    (0x00C0, 0x0100),   // Latin-1 letters
    (0x0391, 0x03AA),   // Greek capitals
    (0x0410, 0x0450),   // Cyrillic
    (0x3041, 0x3097),   // Hiragana
    (0x4E00, 0x4F00),   // CJK ideographs (slice)
    (0x2600, 0x2700),   // symbols
    (0x1F600, 0x1F650), // emoji
];

impl StringStrat {
    fn gen_char(&self, rng: &mut TestRng) -> char {
        match self.alphabet {
            Alphabet::PrintableAscii => {
                char::from_u32(rng.gen_range_u64(0x20, 0x7F) as u32).unwrap()
            }
            Alphabet::Lowercase => char::from_u32(rng.gen_range_u64(0x61, 0x7B) as u32).unwrap(),
            Alphabet::Unicode => {
                let (lo, hi) =
                    UNICODE_BLOCKS[rng.gen_range_u64(0, UNICODE_BLOCKS.len() as u64) as usize];
                char::from_u32(rng.gen_range_u64(u64::from(lo), u64::from(hi)) as u32)
                    .expect("blocks contain only valid scalar values")
            }
        }
    }

    fn simplest_char(&self) -> char {
        match self.alphabet {
            Alphabet::PrintableAscii | Alphabet::Unicode => ' ',
            Alphabet::Lowercase => 'a',
        }
    }
}

impl Strategy for StringStrat {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.gen_char(rng)).collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let min = self.len.start;
        let mut out = Vec::new();
        if chars.len() > min {
            let half = (chars.len() / 2).max(min);
            if half < chars.len() {
                out.push(chars[..half].iter().collect());
            }
            out.push(chars[..chars.len() - 1].iter().collect());
            out.push(chars[1..].iter().collect());
        }
        // Replace each non-simplest character with the simplest one.
        let simple = self.simplest_char();
        for (i, &c) in chars.iter().enumerate() {
            if c != simple {
                let mut next = chars.clone();
                next[i] = simple;
                out.push(next.into_iter().collect());
            }
        }
        out
    }
}

// --- combinators ----------------------------------------------------------

/// Output of [`StrategyExt::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

/// Combinator methods on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`. The mapping is not invertible,
    /// so mapped values do not shrink.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy> StrategyExt for S {}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn int_range_generates_in_bounds() {
        let s = 5u64..20;
        let mut r = rng();
        for _ in 0..1000 {
            assert!(s.contains(&s.generate(&mut r)));
        }
    }

    #[test]
    fn int_shrink_moves_strictly_down() {
        let s = 3usize..100;
        for v in [4usize, 50, 99] {
            for c in s.shrink(&v) {
                assert!(c < v && c >= 3);
            }
        }
        assert!(s.shrink(&3).is_empty());
    }

    #[test]
    fn float_range_generates_in_bounds() {
        let s = -2.5f32..7.5;
        let mut r = rng();
        for _ in 0..1000 {
            let v = s.generate(&mut r);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let s = vec_of(0u32..10, 2..6);
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrink_never_undershoots_min_len() {
        let s = vec_of(0u32..10, 2..6);
        let v = vec![9, 8, 7, 6, 5];
        for c in s.shrink(&v) {
            assert!(c.len() >= 2, "{c:?}");
        }
    }

    #[test]
    fn strings_match_their_alphabet() {
        let mut r = rng();
        for _ in 0..200 {
            for c in printable_ascii(0..50).generate(&mut r).chars() {
                assert!((' '..='~').contains(&c));
            }
            for c in lowercase(1..7).generate(&mut r).chars() {
                assert!(c.is_ascii_lowercase());
            }
            for c in unicode(0..40).generate(&mut r).chars() {
                assert!(!c.is_control(), "control char {c:?}");
            }
        }
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (1u64..100, 1u64..100);
        let v = (50u64, 60u64);
        for (a, b) in s.shrink(&v) {
            let changed = usize::from(a != v.0) + usize::from(b != v.1);
            assert_eq!(changed, 1, "({a}, {b})");
        }
    }

    #[test]
    fn prop_map_applies_function() {
        let s = (1usize..8).prop_map(|x| x * 2);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && (2..16).contains(&v));
        }
        assert!(s.shrink(&6).is_empty(), "mapped values do not shrink");
    }
}
