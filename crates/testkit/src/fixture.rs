//! Process-wide fixture cache: build an expensive test fixture once per
//! test binary and share it across every test that asks for it.
//!
//! `cargo test` runs all of a binary's `#[test]` functions inside one
//! process (on worker threads), so N tests that each synthesize or parse
//! the same model checkpoint would pay the cost N times. [`cached`]
//! keys a fixture by `(name, concrete type)` and hands out [`Arc`]
//! clones, so a cross-model suite can hold, say, the stories260K *and*
//! stories15M weights simultaneously while building each exactly once.
//!
//! Fixtures are immutable by construction (`Arc<T>` is shared): tests
//! that need a mutable value clone out of the fixture — still far
//! cheaper than rebuilding when the fixture is model weights.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type Store = Mutex<HashMap<(String, TypeId), Arc<dyn Any + Send + Sync>>>;

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the fixture registered under `key`, building it with `build`
/// on first use. The same `key` with a *different* type is a different
/// fixture (the type is part of the cache key), so a weights fixture and
/// a token-corpus fixture may share a name without colliding.
///
/// The builder runs outside the cache lock so a slow build never blocks
/// unrelated fixtures; two threads racing on a cold key may both build,
/// and the first to insert wins (the loser's value is dropped).
pub fn cached<T, F>(key: &str, build: F) -> Arc<T>
where
    T: Send + Sync + 'static,
    F: FnOnce() -> T,
{
    let k = (key.to_owned(), TypeId::of::<T>());
    if let Some(hit) = store().lock().expect("fixture store poisoned").get(&k) {
        return Arc::clone(hit)
            .downcast::<T>()
            .expect("TypeId in the key guarantees the downcast");
    }
    let built: Arc<dyn Any + Send + Sync> = Arc::new(build());
    let mut map = store().lock().expect("fixture store poisoned");
    Arc::clone(map.entry(k).or_insert(built))
        .downcast::<T>()
        .expect("TypeId in the key guarantees the downcast")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_lookup_reuses_the_first_build() {
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let a = cached("fixture-reuse", || {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            vec![1u32, 2, 3]
        });
        let b = cached("fixture-reuse", || {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            vec![9u32]
        });
        assert!(Arc::ptr_eq(&a, &b), "one fixture, shared");
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1, "built exactly once");
        assert_eq!(*b, vec![1, 2, 3]);
    }

    #[test]
    fn distinct_keys_and_types_are_distinct_fixtures() {
        let a = cached("fixture-a", || 1u64);
        let b = cached("fixture-b", || 2u64);
        assert_eq!((*a, *b), (1, 2));
        // Same name, different type: no collision.
        let s = cached("fixture-a", || String::from("text"));
        assert_eq!(*s, "text");
        assert_eq!(*cached("fixture-a", || 99u64), 1, "u64 slot untouched");
    }
}
