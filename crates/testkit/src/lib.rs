//! # speedllm-testkit
//!
//! A deterministic, seedable, `std`-only property-testing harness — the
//! in-repo replacement for the subset of `proptest` this workspace uses,
//! so the whole test suite builds and runs offline.
//!
//! Four pieces:
//!
//! * [`fixture`] — a process-wide `(name, type)`-keyed cache so expensive
//!   fixtures (synthesized or parsed model weights) build once per test
//!   binary even when several tests — or several models in one test —
//!   need them.
//! * [`strategy`] — generators with shrinking: numeric ranges are
//!   strategies themselves (`0u64..200`, `-1.0f32..1.0`), tuples compose,
//!   and [`vec_of`]/[`printable_ascii`]/[`lowercase`]/[`unicode`] cover
//!   collections and text. [`StrategyExt::prop_map`] maps generated
//!   values.
//! * [`runner`] — seeded case generation (`TESTKIT_SEED` or a fixed
//!   default; every property derives its own stream from the base seed, so
//!   runs are reproducible end to end) and greedy shrinking to a minimal
//!   counterexample on failure.
//! * The [`props!`] macro — declares `#[test]` property functions in a
//!   `proptest!`-like shape:
//!
//! ```
//! use speedllm_testkit::prelude::*;
//!
//! props! {
//!     #![config(cases = 64)]
//!
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Inside a property body, [`prop_assert!`] / [`prop_assert_eq!`] record a
//! failure (triggering shrinking) instead of panicking, and `?` works on
//! any `Result<_, TestCaseError>`.

#![warn(missing_docs)]

pub mod fixture;
pub mod rng;
pub mod runner;
pub mod strategy;

pub use rng::TestRng;
pub use runner::{check, run, Config, Failure, TestCaseError, DEFAULT_SEED};
pub use strategy::{
    any_bool, any_u64, lowercase, printable_ascii, unicode, vec_of, Strategy, StrategyExt,
};

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::runner::{Config, TestCaseError};
    pub use crate::strategy::{
        any_bool, any_u64, lowercase, printable_ascii, unicode, vec_of, Strategy, StrategyExt,
    };
    pub use crate::{prop_assert, prop_assert_eq, props};
}

/// Records a property failure (and starts shrinking) when the condition is
/// false. With extra arguments, they format the failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// [`prop_assert!`] for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated cases (default 256), with
/// shrinking and a replayable seed on failure.
#[macro_export]
macro_rules! props {
    (
        #![config(cases = $cases:expr)]
        $($rest:tt)*
    ) => {
        $crate::props! { @cfg ($cases) $($rest)* }
    };
    (@cfg ($cases:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg = $crate::Config { cases: $cases, ..$crate::Config::default() };
                let strat = ( $( $strat, )+ );
                $crate::check(&cfg, stringify!($name), &strat, |( $( $arg, )+ )| {
                    $body
                    Ok(())
                });
            }
        )*
    };
    // No `#![config]` header: run with the default 256 cases. This
    // catch-all must stay last so `@cfg` invocations match above.
    (
        $($rest:tt)*
    ) => {
        $crate::props! { @cfg (256u32) $($rest)* }
    };
}
