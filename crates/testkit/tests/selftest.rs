//! The harness tested by itself: seed determinism, name-keyed streams,
//! shrinking convergence, and `TESTKIT_SEED` replay.

use speedllm_testkit::prelude::*;
use speedllm_testkit::{run, Config, TestRng};

fn cfg(seed: u64) -> Config {
    Config {
        cases: 128,
        seed: Some(seed),
        ..Config::default()
    }
}

#[test]
fn same_seed_same_generated_sequence() {
    let strat = (
        0u64..1_000_000,
        vec_of(-1.0f32..1.0, 0..8),
        printable_ascii(0..16),
    );
    let gen_with = |seed: u64| {
        let mut rng = TestRng::new(seed);
        (0..64)
            .map(|_| strat.generate(&mut rng))
            .collect::<Vec<_>>()
    };
    assert_eq!(gen_with(42), gen_with(42));
    assert_ne!(gen_with(42), gen_with(43));
}

#[test]
fn same_seed_same_failure_report() {
    let prop = |v: u64| {
        if v >= 700 {
            Err(TestCaseError::fail("too big"))
        } else {
            Ok(())
        }
    };
    let a = run(&cfg(7), "det", &(0u64..100_000), prop).expect_err("must fail");
    let b = run(&cfg(7), "det", &(0u64..100_000), prop).expect_err("must fail");
    assert_eq!(a.case, b.case);
    assert_eq!(a.original, b.original);
    assert_eq!(a.minimal, b.minimal);
}

#[test]
fn property_name_keys_the_stream() {
    // Two properties with the same base seed see different case sequences,
    // so one property's fix can't mask another's failure.
    let seen = |name: &str| {
        let out = std::cell::RefCell::new(Vec::new());
        run(&cfg(1), name, &(0u64..u64::MAX >> 1), |v| {
            out.borrow_mut().push(v);
            Ok(())
        })
        .unwrap();
        out.into_inner()
    };
    assert_ne!(seen("alpha"), seen("beta"));
}

#[test]
fn integer_shrinking_converges_to_the_boundary() {
    let f = run(&cfg(3), "boundary", &(0u64..100_000), |v| {
        if v >= 10 {
            Err(TestCaseError::fail("v >= 10"))
        } else {
            Ok(())
        }
    })
    .expect_err("must fail");
    assert_eq!(f.minimal, 10, "minimal counterexample must be the boundary");
    assert!(f.original >= f.minimal);
    assert!(f.shrink_steps > 0 || f.original == 10);
}

#[test]
fn vec_shrinking_converges_to_a_single_minimal_element() {
    let f = run(
        &cfg(5),
        "vec_min",
        &vec_of(0u64..1000, 0..20),
        |v: Vec<u64>| {
            if v.iter().any(|&x| x >= 500) {
                Err(TestCaseError::fail("contains big"))
            } else {
                Ok(())
            }
        },
    )
    .expect_err("must fail");
    assert_eq!(
        f.minimal,
        vec![500],
        "minimal counterexample must be a single boundary element"
    );
}

#[test]
fn string_shrinking_only_simplifies() {
    let f = run(&cfg(11), "str_min", &printable_ascii(0..40), |s: String| {
        if s.len() >= 5 {
            Err(TestCaseError::fail("too long"))
        } else {
            Ok(())
        }
    })
    .expect_err("must fail");
    assert_eq!(f.minimal.chars().count(), 5);
    assert!(
        f.minimal.chars().all(|c| c == ' '),
        "chars simplify to space: {:?}",
        f.minimal
    );
}

#[test]
fn testkit_seed_env_is_honored() {
    // This test owns the env var for its own process-global moment; every
    // other test in this file pins Config::seed and never reads the env.
    std::env::set_var("TESTKIT_SEED", "12345");
    let resolved = Config::default().resolved_seed();
    std::env::remove_var("TESTKIT_SEED");
    assert_eq!(resolved, 12345);
    assert_eq!(
        Config::default().resolved_seed(),
        speedllm_testkit::DEFAULT_SEED
    );
}

#[test]
fn passing_property_touches_every_case() {
    let n = std::cell::Cell::new(0u32);
    run(&cfg(2), "count", &any_bool(), |_| {
        n.set(n.get() + 1);
        Ok(())
    })
    .unwrap();
    assert_eq!(n.get(), 128);
}

props! {
    #![config(cases = 64)]

    // The macro surface itself, exercised end to end.
    fn macro_tuple_args_work(a in 0u64..100, b in any_bool(), s in lowercase(1..5)) {
        prop_assert!(a < 100);
        prop_assert!(b || !b);
        prop_assert!(!s.is_empty() && s.len() < 5);
        prop_assert!(s.bytes().all(|c| c.is_ascii_lowercase()));
    }

    fn macro_mapped_strategy_works(even in (0u64..50).prop_map(|x| x * 2)) {
        prop_assert_eq!(even % 2, 0);
    }

    fn unicode_strategy_emits_no_control_chars(s in unicode(0..30)) {
        prop_assert!(s.chars().all(|c| !c.is_control()), "control char in {:?}", s);
    }
}
