//! # speedllm-gpu-model
//!
//! Analytical roofline decode model for the datacenter GPUs the paper's
//! cost-efficiency argument (§3.2.2) compares against. Single-batch LLM
//! decoding is memory-bandwidth bound on GPUs — every generated token
//! streams all weights plus the live KV cache — so
//! `tokens/s ≈ effective_bandwidth / bytes_per_token`, clipped by the
//! compute roofline. Cost efficiency is then `tokens/s / list price`,
//! exactly the arithmetic behind the paper's claim that the $8k U280 beats
//! the $12k V100S and $17k A100 on tokens/s/$ for small-model inference.
//!
//! For the *tiny* models of the paper's edge scenario, the binding term is
//! not bandwidth but **kernel-launch overhead**: ~a dozen dispatches per
//! layer at microseconds each, which caps batch-1 throughput in the low
//! thousands of tokens/s regardless of how fast the HBM is — consistent
//! with real measurements of TinyStories-class models on datacenter GPUs.
//! Both terms are modelled; the binding one wins.

#![warn(missing_docs)]

use speedllm_llama::config::ModelConfig;

/// Static specification of a decode device for the roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak memory bandwidth, bytes/s.
    pub mem_bw_bytes_per_s: f64,
    /// Sustained fraction of peak bandwidth achievable on matvec streams.
    pub mem_efficiency: f64,
    /// Peak fp16/fp32-accumulate throughput, FLOP/s.
    pub peak_flops: f64,
    /// Board power, watts (TDP).
    pub tdp_w: f64,
    /// List price in USD (the paper's figures).
    pub price_usd: f64,
    /// Host overhead per kernel launch, seconds. Batch-1 decoding of tiny
    /// models is dominated by this on GPUs: every layer dispatches ~a
    /// dozen kernels and each costs microseconds of launch latency —
    /// the effect that makes FPGAs attractive for small-model inference
    /// and the paper's edge use case.
    pub kernel_launch_s: f64,
}

/// Kernels a framework dispatches per decoded token: roughly a dozen per
/// transformer layer (norms, QKV, rope, attention pieces, FFN) plus
/// embedding/classifier/sampling.
#[must_use]
pub fn kernels_per_token(model: &ModelConfig) -> f64 {
    (model.n_layers * 12 + 5) as f64
}

impl GpuSpec {
    /// NVIDIA V100S 32 GB (HBM2, 1134 GB/s), $12,000 per the paper.
    #[must_use]
    pub fn v100s() -> Self {
        Self {
            name: "V100S",
            mem_bw_bytes_per_s: 1134.0e9,
            mem_efficiency: 0.75,
            peak_flops: 130.0e12, // tensor fp16
            tdp_w: 250.0,
            price_usd: 12_000.0,
            kernel_launch_s: 6.0e-6,
        }
    }

    /// NVIDIA A100 40 GB (HBM2e, 1555 GB/s), $17,000 per the paper.
    #[must_use]
    pub fn a100() -> Self {
        Self {
            name: "A100",
            mem_bw_bytes_per_s: 1555.0e9,
            mem_efficiency: 0.78,
            peak_flops: 312.0e12,
            tdp_w: 300.0,
            price_usd: 17_000.0,
            kernel_launch_s: 5.0e-6,
        }
    }

    /// The paper's comparison set.
    #[must_use]
    pub fn paper_gpus() -> Vec<GpuSpec> {
        vec![Self::v100s(), Self::a100()]
    }

    /// Bytes streamed per generated token: all weights at
    /// `bytes_per_weight`, plus the KV cache up to `ctx` positions (f16 on
    /// GPU).
    #[must_use]
    pub fn bytes_per_token(&self, model: &ModelConfig, ctx: usize, bytes_per_weight: f64) -> f64 {
        let weights = model.param_count() as f64 * bytes_per_weight;
        let kv = (2 * model.n_layers * ctx * model.kv_dim()) as f64 * 2.0;
        weights + kv
    }

    /// Decode throughput (tokens/s) at context length `ctx` with
    /// `bytes_per_weight`-wide weights, for batch size 1.
    #[must_use]
    pub fn decode_tokens_per_s(
        &self,
        model: &ModelConfig,
        ctx: usize,
        bytes_per_weight: f64,
    ) -> f64 {
        let bytes = self.bytes_per_token(model, ctx, bytes_per_weight);
        let mem_time = bytes / (self.mem_bw_bytes_per_s * self.mem_efficiency);
        // Compute roofline: 2 FLOPs per weight (MAC).
        let flops = 2.0 * model.param_count() as f64;
        let compute_time = flops / self.peak_flops;
        let overhead = kernels_per_token(model) * self.kernel_launch_s;
        1.0 / (mem_time.max(compute_time) + overhead)
    }

    /// Cost efficiency in tokens/s per dollar (the paper's §3.2.2 metric).
    #[must_use]
    pub fn tokens_per_s_per_dollar(
        &self,
        model: &ModelConfig,
        ctx: usize,
        bytes_per_weight: f64,
    ) -> f64 {
        self.decode_tokens_per_s(model, ctx, bytes_per_weight) / self.price_usd
    }

    /// Power efficiency in tokens/s per watt at TDP.
    #[must_use]
    pub fn tokens_per_s_per_watt(
        &self,
        model: &ModelConfig,
        ctx: usize,
        bytes_per_weight: f64,
    ) -> f64 {
        self.decode_tokens_per_s(model, ctx, bytes_per_weight) / self.tdp_w
    }
}

/// A generic device row for the cost table (GPU or FPGA), so the repro
/// binary can mix roofline GPUs with the measured accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Device name.
    pub device: String,
    /// Decode throughput, tokens/s.
    pub tokens_per_s: f64,
    /// List price, USD.
    pub price_usd: f64,
}

impl CostRow {
    /// Tokens/s/$ for this row.
    #[must_use]
    pub fn tokens_per_s_per_dollar(&self) -> f64 {
        self.tokens_per_s / self.price_usd
    }
}

/// The U280's list price used by the paper.
pub const U280_PRICE_USD: f64 = 8_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig::stories15m()
    }

    #[test]
    fn decode_is_memory_bound_for_small_models() {
        let g = GpuSpec::a100();
        let m = model();
        let bytes = g.bytes_per_token(&m, 128, 2.0);
        let mem_time = bytes / (g.mem_bw_bytes_per_s * g.mem_efficiency);
        let compute_time = 2.0 * m.param_count() as f64 / g.peak_flops;
        assert!(mem_time > compute_time, "decode must be memory-bound");
    }

    #[test]
    fn a100_is_faster_than_v100s() {
        let m = model();
        let a = GpuSpec::a100().decode_tokens_per_s(&m, 128, 2.0);
        let v = GpuSpec::v100s().decode_tokens_per_s(&m, 128, 2.0);
        assert!(a > v, "a100 {a} vs v100s {v}");
    }

    #[test]
    fn throughput_decreases_with_context() {
        let m = model();
        let g = GpuSpec::a100();
        let t0 = g.decode_tokens_per_s(&m, 0, 2.0);
        let t_long = g.decode_tokens_per_s(&m, 256, 2.0);
        assert!(t0 >= t_long);
    }

    #[test]
    fn small_model_throughput_is_launch_limited() {
        // stories15M dispatches ~77 kernels/token; at ~5 us per launch the
        // A100 lands in the low thousands of tokens/s at batch 1 —
        // matching real measurements of tiny models on GPUs and the reason
        // FPGAs shine in the paper's edge use case.
        let m = model();
        let g = GpuSpec::a100();
        let t = g.decode_tokens_per_s(&m, 128, 2.0);
        assert!(t > 1_000.0 && t < 5_000.0, "got {t}");
        let overhead = kernels_per_token(&m) * g.kernel_launch_s;
        let mem = g.bytes_per_token(&m, 128, 2.0) / (g.mem_bw_bytes_per_s * g.mem_efficiency);
        assert!(overhead > mem, "launch overhead should dominate");
    }

    #[test]
    fn cost_efficiency_divides_price() {
        let m = model();
        let g = GpuSpec::v100s();
        let t = g.decode_tokens_per_s(&m, 64, 2.0);
        assert!((g.tokens_per_s_per_dollar(&m, 64, 2.0) - t / 12_000.0).abs() < 1e-9);
        assert!((g.tokens_per_s_per_watt(&m, 64, 2.0) - t / 250.0).abs() < 1e-9);
    }

    #[test]
    fn cost_row_math() {
        let r = CostRow {
            device: "U280".into(),
            tokens_per_s: 4000.0,
            price_usd: U280_PRICE_USD,
        };
        assert!((r.tokens_per_s_per_dollar() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_gpu_set() {
        let gpus = GpuSpec::paper_gpus();
        assert_eq!(gpus.len(), 2);
        assert_eq!(gpus[0].name, "V100S");
        assert_eq!(gpus[1].name, "A100");
        assert_eq!(gpus[0].price_usd, 12_000.0);
        assert_eq!(gpus[1].price_usd, 17_000.0);
    }
}
