//! Device resource budget and utilization estimation.
//!
//! Every accelerator configuration must fit the XCU280's fabric. The
//! estimator below turns a design point (MPE shape, SFU set, DMA engines,
//! on-chip buffer high-water marks) into LUT/FF/DSP/BRAM/URAM counts using
//! coarse per-block coefficients typical of Vitis HLS reports, and checks
//! them against the budget — configurations that do not fit are rejected at
//! construction time rather than producing fictitious timing.

use crate::mpe::MpeConfig;
use crate::sfu::SfuKind;

/// A bundle of fabric resources (either a budget or a usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP48E2 slices.
    pub dsps: u64,
    /// BRAM18 blocks.
    pub bram18: u64,
    /// URAM blocks.
    pub uram: u64,
}

impl Resources {
    /// The XCU280 device budget (datasheet values).
    #[must_use]
    pub fn u280_budget() -> Self {
        Self {
            luts: 1_304_000,
            ffs: 2_607_000,
            dsps: 9_024,
            bram18: 4_032,
            uram: 960,
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            dsps: self.dsps + other.dsps,
            bram18: self.bram18 + other.bram18,
            uram: self.uram + other.uram,
        }
    }

    /// True when `self` fits within `budget` on every axis.
    #[must_use]
    pub fn fits(&self, budget: &Resources) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.dsps <= budget.dsps
            && self.bram18 <= budget.bram18
            && self.uram <= budget.uram
    }

    /// Utilization fractions against a budget, ordered
    /// (lut, ff, dsp, bram, uram).
    #[must_use]
    pub fn utilization(&self, budget: &Resources) -> [f64; 5] {
        let frac = |a: u64, b: u64| {
            if b == 0 {
                0.0
            } else {
                a as f64 / b as f64
            }
        };
        [
            frac(self.luts, budget.luts),
            frac(self.ffs, budget.ffs),
            frac(self.dsps, budget.dsps),
            frac(self.bram18, budget.bram18),
            frac(self.uram, budget.uram),
        ]
    }
}

/// Resource over-budget error, naming the first exceeded axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverBudget {
    /// The axis that does not fit.
    pub axis: &'static str,
    /// Requested amount.
    pub used: u64,
    /// Available amount.
    pub available: u64,
}

impl std::fmt::Display for OverBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "design does not fit the device: {} used {} of {}",
            self.axis, self.used, self.available
        )
    }
}

impl std::error::Error for OverBudget {}

/// Checks `used` against `budget`, reporting the first violated axis.
pub fn check_fit(used: &Resources, budget: &Resources) -> Result<(), OverBudget> {
    let axes: [(&'static str, u64, u64); 5] = [
        ("LUT", used.luts, budget.luts),
        ("FF", used.ffs, budget.ffs),
        ("DSP", used.dsps, budget.dsps),
        ("BRAM18", used.bram18, budget.bram18),
        ("URAM", used.uram, budget.uram),
    ];
    for (axis, u, b) in axes {
        if u > b {
            return Err(OverBudget {
                axis,
                used: u,
                available: b,
            });
        }
    }
    Ok(())
}

/// Estimates the fabric cost of an MPE instance.
///
/// Coefficients are coarse Vitis-HLS-report figures: an fp32 MAC costs
/// ~5 DSP plus several hundred LUT/FF of alignment and control, while an
/// int8 MAC packs into half a DSP with only a few tens of LUTs — which is
/// exactly why int8 design points can be much wider on the same fabric.
#[must_use]
pub fn estimate_mpe(config: &MpeConfig) -> Resources {
    let macs = config.macs_per_cycle();
    let (lut_per_mac, ff_per_mac) = match config.precision {
        crate::mpe::Precision::Fp32 => (420, 610),
        crate::mpe::Precision::Int8 => (60, 90),
        crate::mpe::Precision::Int4 => (40, 60),
    };
    Resources {
        luts: macs * lut_per_mac + 20_000,
        ffs: macs * ff_per_mac + 30_000,
        dsps: config.dsp_count(),
        bram18: (config.lanes as u64) * 2, // per-lane accumulator buffers
        uram: 0,
    }
}

/// Estimates the fabric cost of one SFU datapath.
#[must_use]
pub fn estimate_sfu(kind: SfuKind) -> Resources {
    // exp/rsqrt tables dominate the reduce kinds.
    let (luts, ffs, dsps, bram) = match kind {
        SfuKind::RmsNorm => (9_000, 12_000, 18, 8),
        SfuKind::Softmax => (12_000, 16_000, 24, 12),
        SfuKind::Rope => (7_000, 9_000, 16, 10),
        SfuKind::Silu => (6_000, 8_000, 12, 6),
        SfuKind::Add => (2_000, 2_500, 8, 0),
        SfuKind::Mul => (2_000, 2_500, 8, 0),
    };
    Resources {
        luts,
        ffs,
        dsps,
        bram18: bram,
        uram: 0,
    }
}

/// Estimates the fabric cost of one DMA engine striped over `channels`.
#[must_use]
pub fn estimate_dma(channels: usize) -> Resources {
    Resources {
        luts: 4_000 + 1_500 * channels as u64,
        ffs: 6_000 + 2_000 * channels as u64,
        dsps: 0,
        bram18: 4 * channels as u64, // reorder/burst buffers
        uram: 0,
    }
}

/// Converts on-chip buffer high-water marks (bytes) into block counts.
#[must_use]
pub fn estimate_buffers(bram_bytes: u64, uram_bytes: u64) -> Resources {
    Resources {
        luts: 0,
        ffs: 0,
        dsps: 0,
        bram18: bram_bytes.div_ceil(18 * 1024 / 8),
        uram: uram_bytes.div_ceil(288 * 1024 / 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_matches_datasheet() {
        let b = Resources::u280_budget();
        assert_eq!(b.dsps, 9024);
        assert_eq!(b.bram18, 4032);
        assert_eq!(b.uram, 960);
    }

    #[test]
    fn shipped_fp32_design_fits() {
        let total = estimate_mpe(&MpeConfig::u280_fp32())
            .plus(estimate_dma(16))
            .plus(estimate_dma(4))
            .plus(estimate_buffers(2 << 20, 8 << 20));
        let total = SfuKind::ALL
            .iter()
            .fold(total, |acc, &k| acc.plus(estimate_sfu(k)));
        check_fit(&total, &Resources::u280_budget()).expect("shipped design must fit");
    }

    #[test]
    fn oversized_mpe_rejected() {
        let huge = MpeConfig {
            lanes: 1024,
            vec_width: 16,
            pipeline_depth: 12,
            precision: crate::mpe::Precision::Fp32,
        };
        let used = estimate_mpe(&huge);
        let err = check_fit(&used, &Resources::u280_budget()).unwrap_err();
        // A 16k-MAC fp32 array blows the LUT budget first (and DSP too).
        assert_eq!(err.axis, "LUT");
        assert!(used.dsps > Resources::u280_budget().dsps);
    }

    #[test]
    fn fits_is_componentwise() {
        let b = Resources {
            luts: 10,
            ffs: 10,
            dsps: 10,
            bram18: 10,
            uram: 10,
        };
        let ok = Resources {
            luts: 10,
            ffs: 9,
            dsps: 0,
            bram18: 1,
            uram: 10,
        };
        let bad = Resources {
            luts: 1,
            ffs: 1,
            dsps: 11,
            bram18: 1,
            uram: 1,
        };
        assert!(ok.fits(&b));
        assert!(!bad.fits(&b));
    }

    #[test]
    fn utilization_fractions() {
        let b = Resources::u280_budget();
        let u = estimate_mpe(&MpeConfig::u280_fp32()).utilization(&b);
        assert!(u.iter().all(|&f| (0.0..=1.0).contains(&f)), "{u:?}");
        assert!(
            u[2] > 0.2,
            "DSP utilization should be significant: {}",
            u[2]
        );
    }

    #[test]
    fn buffer_estimate_rounds_up_blocks() {
        let r = estimate_buffers(1, 1);
        assert_eq!(r.bram18, 1);
        assert_eq!(r.uram, 1);
        let r = estimate_buffers(18 * 1024 / 8 + 1, 0);
        assert_eq!(r.bram18, 2);
    }

    #[test]
    fn plus_adds_componentwise() {
        let a = Resources {
            luts: 1,
            ffs: 2,
            dsps: 3,
            bram18: 4,
            uram: 5,
        };
        let s = a.plus(a);
        assert_eq!(
            s,
            Resources {
                luts: 2,
                ffs: 4,
                dsps: 6,
                bram18: 8,
                uram: 10
            }
        );
    }
}
