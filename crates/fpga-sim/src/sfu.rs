//! Special Function Unit (SFU) timing model.
//!
//! Fig. 1's SFU handles everything that is not a dense matmul: RMS
//! normalization, softmax, rotary embeddings, SiLU, and element-wise
//! add/multiply. Each kind is a pipelined datapath characterized by an
//! issue throughput (elements per cycle), a pipeline latency, and a pass
//! count (softmax and rmsnorm need a reduction pass before the map pass).

use crate::cycles::Cycles;

/// The operation kinds the SFU implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuKind {
    /// Root-mean-square normalization (reduce + scale passes).
    RmsNorm,
    /// Numerically-stable softmax (max+sum reduce, then normalize).
    Softmax,
    /// Rotary position embedding (paired rotate, sincos lookup table).
    Rope,
    /// SiLU activation.
    Silu,
    /// Element-wise addition (residual connections).
    Add,
    /// Element-wise multiplication (SwiGLU gating).
    Mul,
}

impl SfuKind {
    /// All kinds, for iteration in reports and resource estimation.
    pub const ALL: [SfuKind; 6] = [
        SfuKind::RmsNorm,
        SfuKind::Softmax,
        SfuKind::Rope,
        SfuKind::Silu,
        SfuKind::Add,
        SfuKind::Mul,
    ];

    /// Elements accepted per cycle once the pipeline is primed.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        match self {
            SfuKind::RmsNorm => 4.0,
            SfuKind::Softmax => 2.0,
            SfuKind::Rope => 2.0,
            SfuKind::Silu => 4.0,
            SfuKind::Add => 8.0,
            SfuKind::Mul => 8.0,
        }
    }

    /// Pipeline latency (fill) in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        match self {
            SfuKind::RmsNorm => 24, // accumulate + rsqrt
            SfuKind::Softmax => 28, // max/sum reduce + exp
            SfuKind::Rope => 10,
            SfuKind::Silu => 12,
            SfuKind::Add => 4,
            SfuKind::Mul => 4,
        }
    }

    /// Number of passes over the data (reductions need two).
    #[must_use]
    pub fn passes(&self) -> u64 {
        match self {
            SfuKind::RmsNorm | SfuKind::Softmax => 2,
            _ => 1,
        }
    }
}

/// Per-run SFU activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SfuCounters {
    /// Elements processed (summed over all kinds).
    pub elements: u64,
    /// Busy cycles accumulated.
    pub busy_cycles: u64,
    /// Operations issued.
    pub ops: u64,
}

/// The SFU: timing + counters.
#[derive(Debug, Clone, Default)]
pub struct Sfu {
    counters: SfuCounters,
}

impl Sfu {
    /// Creates an idle SFU.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated counters.
    #[must_use]
    pub fn counters(&self) -> &SfuCounters {
        &self.counters
    }

    /// Cycle cost of applying `kind` to `elements` elements.
    #[must_use]
    pub fn op_cost(&self, kind: SfuKind, elements: usize) -> Cycles {
        if elements == 0 {
            return Cycles::ZERO;
        }
        let stream = Cycles::for_items(elements as u64, kind.throughput());
        Cycles(kind.passes() * stream.0 + kind.latency())
    }

    /// Records an operation and returns its cost.
    pub fn run(&mut self, kind: SfuKind, elements: usize) -> Cycles {
        let cost = self.op_cost(kind, elements);
        if elements > 0 {
            self.counters.elements += elements as u64;
            self.counters.busy_cycles += cost.0;
            self.counters.ops += 1;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_elements_is_free() {
        let sfu = Sfu::new();
        for kind in SfuKind::ALL {
            assert_eq!(sfu.op_cost(kind, 0), Cycles::ZERO);
        }
    }

    #[test]
    fn reductions_cost_two_passes() {
        let sfu = Sfu::new();
        // 256 elements at 4/cycle = 64 per pass; rmsnorm has 2 passes + 24.
        assert_eq!(sfu.op_cost(SfuKind::RmsNorm, 256), Cycles(2 * 64 + 24));
        // Add is single pass: 256/8 = 32 + 4.
        assert_eq!(sfu.op_cost(SfuKind::Add, 256), Cycles(36));
    }

    #[test]
    fn cost_monotone_in_elements() {
        let sfu = Sfu::new();
        for kind in SfuKind::ALL {
            assert!(sfu.op_cost(kind, 100) <= sfu.op_cost(kind, 1000));
        }
    }

    #[test]
    fn softmax_more_expensive_than_add() {
        let sfu = Sfu::new();
        assert!(sfu.op_cost(SfuKind::Softmax, 512) > sfu.op_cost(SfuKind::Add, 512));
    }

    #[test]
    fn counters_accumulate() {
        let mut sfu = Sfu::new();
        sfu.run(SfuKind::Silu, 768);
        sfu.run(SfuKind::Mul, 768);
        sfu.run(SfuKind::Add, 0); // no-op
        let c = sfu.counters();
        assert_eq!(c.elements, 1536);
        assert_eq!(c.ops, 2);
        assert!(c.busy_cycles > 0);
    }

    #[test]
    fn small_ops_dominated_by_latency() {
        let sfu = Sfu::new();
        let c = sfu.op_cost(SfuKind::Rope, 2);
        assert_eq!(c, Cycles(1 + 10));
    }
}
