//! DMA stream engines between HBM and on-chip memory.
//!
//! Each engine models one AXI master port with a per-transfer setup cost
//! (address generation, burst negotiation) on top of the HBM channel
//! bandwidth it is striped across. The *number of engines instantiated* is
//! the key co-design lever: the unoptimized baseline uses a single engine
//! on few channels (a naive single-`m_axi` HLS design), while the streamed
//! design dedicates separate read and write engines striped wide.

use crate::cycles::Cycles;
use crate::hbm::Hbm;

/// Transfer direction, for counter attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// HBM → on-chip.
    Read,
    /// On-chip → HBM.
    Write,
}

/// Static configuration of one DMA engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Pseudo-channels this engine stripes across.
    pub channels: usize,
    /// Fixed setup cycles per transfer descriptor.
    pub setup_cycles: u64,
    /// Whether the engine keeps multiple requests outstanding. A pipelined
    /// engine hides the HBM access latency behind the stream (only setup +
    /// occupancy are charged); a naive engine waits out the full access
    /// latency on every transfer — the blocking `memcpy`-style access
    /// pattern of a first-pass HLS design.
    pub pipelined: bool,
}

impl DmaConfig {
    /// A wide streaming engine (16 channels, outstanding requests) as used
    /// by the optimized design's weight reader.
    #[must_use]
    pub fn wide() -> Self {
        Self {
            channels: 16,
            setup_cycles: 16,
            pipelined: true,
        }
    }

    /// A narrow blocking engine (2 channels) as found in naive single-port
    /// designs.
    #[must_use]
    pub fn narrow() -> Self {
        Self {
            channels: 2,
            setup_cycles: 16,
            pipelined: false,
        }
    }
}

/// Per-engine activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaCounters {
    /// Transfers issued.
    pub transfers: u64,
    /// Busy cycles accumulated.
    pub busy_cycles: u64,
}

/// One DMA stream engine.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    config: DmaConfig,
    direction: Direction,
    counters: DmaCounters,
}

impl DmaEngine {
    /// Creates an engine for one direction.
    #[must_use]
    pub fn new(config: DmaConfig, direction: Direction) -> Self {
        assert!(config.channels > 0, "engine needs at least one channel");
        Self {
            config,
            direction,
            counters: DmaCounters::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }

    /// The direction this engine serves.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Accumulated counters.
    #[must_use]
    pub fn counters(&self) -> &DmaCounters {
        &self.counters
    }

    /// Cost of transferring `bytes` through this engine against `hbm`,
    /// without recording anything (for planning).
    #[must_use]
    pub fn transfer_cost(&self, hbm: &Hbm, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let hbm_cost = hbm.transfer_cost(bytes, self.config.channels);
        let cost = if self.config.pipelined {
            // Outstanding requests hide the per-access latency; only the
            // stream occupancy remains.
            hbm_cost.saturating_sub(hbm.config().access_latency)
        } else {
            hbm_cost
        };
        Cycles(self.config.setup_cycles) + cost
    }

    /// Executes a transfer: records HBM traffic and engine busy time,
    /// returning the cycle cost.
    pub fn transfer(&mut self, hbm: &mut Hbm, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let cost = self.transfer_cost(hbm, bytes);
        // Record the traffic (the cost was computed above without
        // mutating counters).
        match self.direction {
            Direction::Read => hbm.read(bytes, self.config.channels),
            Direction::Write => hbm.write(bytes, self.config.channels),
        };
        self.counters.transfers += 1;
        self.counters.busy_cycles += cost.0;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::HbmConfig;

    #[test]
    fn wide_engine_beats_narrow() {
        let hbm = Hbm::new(HbmConfig::u280());
        let wide = DmaEngine::new(DmaConfig::wide(), Direction::Read);
        let narrow = DmaEngine::new(DmaConfig::narrow(), Direction::Read);
        let bytes = 4 << 20;
        assert!(wide.transfer_cost(&hbm, bytes) < narrow.transfer_cost(&hbm, bytes));
    }

    #[test]
    fn zero_transfer_is_free_and_unrecorded() {
        let mut hbm = Hbm::new(HbmConfig::u280());
        let mut eng = DmaEngine::new(DmaConfig::wide(), Direction::Read);
        assert_eq!(eng.transfer(&mut hbm, 0), Cycles::ZERO);
        assert_eq!(eng.counters().transfers, 0);
        assert_eq!(hbm.counters().read_transfers, 0);
    }

    #[test]
    fn transfer_records_direction() {
        let mut hbm = Hbm::new(HbmConfig::u280());
        let mut rd = DmaEngine::new(DmaConfig::wide(), Direction::Read);
        let mut wr = DmaEngine::new(DmaConfig::wide(), Direction::Write);
        rd.transfer(&mut hbm, 1024);
        wr.transfer(&mut hbm, 512);
        assert_eq!(hbm.counters().read_bytes, 1024);
        assert_eq!(hbm.counters().write_bytes, 512);
        assert_eq!(rd.counters().transfers, 1);
        assert_eq!(wr.counters().transfers, 1);
    }

    #[test]
    fn cost_includes_setup() {
        let hbm = Hbm::new(HbmConfig::u280());
        let eng = DmaEngine::new(
            DmaConfig {
                channels: 1,
                setup_cycles: 100,
                pipelined: false,
            },
            Direction::Read,
        );
        let c = eng.transfer_cost(&hbm, 48);
        // setup 100 + latency 64 + ceil(64/48)=2 cycles.
        assert_eq!(c, Cycles(100 + 64 + 2));
        let pipe = DmaEngine::new(
            DmaConfig {
                channels: 1,
                setup_cycles: 100,
                pipelined: true,
            },
            Direction::Read,
        );
        // Pipelined: the 64-cycle access latency is hidden.
        assert_eq!(pipe.transfer_cost(&hbm, 48), Cycles(100 + 2));
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut hbm = Hbm::new(HbmConfig::u280());
        let mut eng = DmaEngine::new(DmaConfig::wide(), Direction::Read);
        let c1 = eng.transfer(&mut hbm, 4096);
        let c2 = eng.transfer(&mut hbm, 4096);
        assert_eq!(eng.counters().busy_cycles, c1.0 + c2.0);
    }
}
