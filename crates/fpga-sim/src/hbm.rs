//! HBM2 stack model.
//!
//! The Alveo U280 exposes 8 GiB of HBM2 through 32 pseudo-channels of
//! ~14.4 GB/s each (460 GB/s aggregate). A kernel port reaches the stack
//! through an AXI interface; how many pseudo-channels a design *actually*
//! stripes its buffers across is a co-design decision — naive HLS designs
//! use one or two ports and leave most of the bandwidth idle, which is
//! exactly the behaviour the unoptimized SpeedLLM baseline exhibits.
//!
//! The model is analytic: a transfer of `bytes` over `channels` costs a
//! fixed access latency plus `bytes / (channels × channel_bw)` cycles.
//! Byte counters feed the traffic report and the energy model.

use crate::cycles::Cycles;

/// Static parameters of the HBM stack, normalized to the kernel clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmConfig {
    /// Number of pseudo-channels on the device (32 on the U280).
    pub channels: usize,
    /// Sustainable bytes per kernel-clock cycle per pseudo-channel.
    /// 14.4 GB/s at 300 MHz = 48 B/cycle.
    pub channel_bytes_per_cycle: f64,
    /// Fixed per-transfer latency (row activation + AXI round trip).
    pub access_latency: Cycles,
    /// Transfer granularity in bytes; transfers are padded up to a burst.
    pub burst_bytes: u64,
    /// Total capacity in bytes (8 GiB on the U280).
    pub capacity_bytes: u64,
}

impl Default for HbmConfig {
    fn default() -> Self {
        Self::u280()
    }
}

impl HbmConfig {
    /// The U280 datasheet configuration.
    #[must_use]
    pub fn u280() -> Self {
        Self {
            channels: 32,
            channel_bytes_per_cycle: 48.0,
            access_latency: Cycles(64),
            burst_bytes: 64,
            capacity_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Aggregate bandwidth in bytes per cycle when all channels stream.
    #[must_use]
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.channel_bytes_per_cycle
    }
}

/// Traffic counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HbmCounters {
    /// Bytes read from HBM (after burst padding).
    pub read_bytes: u64,
    /// Bytes written to HBM (after burst padding).
    pub write_bytes: u64,
    /// Number of read transfers issued.
    pub read_transfers: u64,
    /// Number of write transfers issued.
    pub write_transfers: u64,
}

impl HbmCounters {
    /// Total bytes moved in either direction.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// The HBM stack: cost model + counters.
#[derive(Debug, Clone)]
pub struct Hbm {
    config: HbmConfig,
    counters: HbmCounters,
}

impl Hbm {
    /// Creates a stack with the given configuration.
    #[must_use]
    pub fn new(config: HbmConfig) -> Self {
        assert!(config.channels > 0, "at least one channel");
        assert!(config.channel_bytes_per_cycle > 0.0, "positive bandwidth");
        assert!(config.burst_bytes > 0, "positive burst size");
        Self {
            config,
            counters: HbmCounters::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &HbmConfig {
        &self.config
    }

    /// Accumulated traffic counters.
    #[must_use]
    pub fn counters(&self) -> &HbmCounters {
        &self.counters
    }

    /// Rounds a transfer size up to burst granularity.
    #[must_use]
    pub fn padded(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.config.burst_bytes) * self.config.burst_bytes
    }

    /// Cycle cost of a transfer of `bytes` striped over `channels`
    /// pseudo-channels (clamped to the device's channel count).
    /// Zero-byte transfers are free.
    #[must_use]
    pub fn transfer_cost(&self, bytes: u64, channels: usize) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let channels = channels.clamp(1, self.config.channels);
        let bw = channels as f64 * self.config.channel_bytes_per_cycle;
        self.config.access_latency + Cycles::for_bytes(self.padded(bytes), bw)
    }

    /// Records a read and returns its cycle cost.
    pub fn read(&mut self, bytes: u64, channels: usize) -> Cycles {
        let cost = self.transfer_cost(bytes, channels);
        if bytes > 0 {
            self.counters.read_bytes += self.padded(bytes);
            self.counters.read_transfers += 1;
        }
        cost
    }

    /// Records a write and returns its cycle cost.
    pub fn write(&mut self, bytes: u64, channels: usize) -> Cycles {
        let cost = self.transfer_cost(bytes, channels);
        if bytes > 0 {
            self.counters.write_bytes += self.padded(bytes);
            self.counters.write_transfers += 1;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_peak_bandwidth() {
        let cfg = HbmConfig::u280();
        // 32 × 48 B/cycle × 300 MHz = 460.8 GB/s.
        assert!((cfg.peak_bytes_per_cycle() - 1536.0).abs() < 1e-9);
    }

    #[test]
    fn padding_rounds_to_bursts() {
        let hbm = Hbm::new(HbmConfig::u280());
        assert_eq!(hbm.padded(0), 0);
        assert_eq!(hbm.padded(1), 64);
        assert_eq!(hbm.padded(64), 64);
        assert_eq!(hbm.padded(65), 128);
    }

    #[test]
    fn transfer_cost_scales_with_channels() {
        let hbm = Hbm::new(HbmConfig::u280());
        let one = hbm.transfer_cost(1 << 20, 1);
        let all = hbm.transfer_cost(1 << 20, 32);
        assert!(one > all, "{one} should exceed {all}");
        // 1 MiB over one 48 B/cycle channel ≈ 21846 cycles + latency.
        assert_eq!(one, Cycles(64) + Cycles::for_bytes(1 << 20, 48.0));
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut hbm = Hbm::new(HbmConfig::u280());
        assert_eq!(hbm.read(0, 4), Cycles::ZERO);
        assert_eq!(hbm.counters().read_transfers, 0);
    }

    #[test]
    fn channels_clamped_to_device() {
        let hbm = Hbm::new(HbmConfig::u280());
        assert_eq!(hbm.transfer_cost(4096, 999), hbm.transfer_cost(4096, 32));
        assert_eq!(hbm.transfer_cost(4096, 0), hbm.transfer_cost(4096, 1));
    }

    #[test]
    fn counters_accumulate_padded_bytes() {
        let mut hbm = Hbm::new(HbmConfig::u280());
        hbm.read(100, 8);
        hbm.read(64, 8);
        hbm.write(10, 8);
        let c = hbm.counters();
        assert_eq!(c.read_bytes, 128 + 64);
        assert_eq!(c.write_bytes, 64);
        assert_eq!(c.read_transfers, 2);
        assert_eq!(c.write_transfers, 1);
        assert_eq!(c.total_bytes(), 256);
    }

    #[test]
    fn small_transfer_dominated_by_latency() {
        let hbm = Hbm::new(HbmConfig::u280());
        let c = hbm.transfer_cost(64, 32);
        assert_eq!(c, Cycles(64) + Cycles(1));
    }
}
