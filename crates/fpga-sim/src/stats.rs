//! Unified per-run simulation statistics.
//!
//! [`SimStats`] aggregates the activity counters of every device component
//! after a run; it is the single input to the power model and the traffic
//! tables in the reproduction reports.

use crate::cycles::Cycles;
use crate::hbm::HbmCounters;
use crate::mpe::MpeCounters;
use crate::sfu::SfuCounters;

/// Aggregated activity of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// End-to-end makespan of the run.
    pub total_cycles: Cycles,
    /// Off-chip traffic.
    pub hbm: HbmCounters,
    /// Bytes read from on-chip memories (BRAM + URAM).
    pub ocm_read_bytes: u64,
    /// Bytes written to on-chip memories.
    pub ocm_write_bytes: u64,
    /// Matrix engine activity.
    pub mpe: MpeCounters,
    /// Special-function-unit activity.
    pub sfu: SfuCounters,
    /// DMA busy time in **channel-cycles**: each engine's busy cycles
    /// weighted by the number of pseudo-channels it stripes across, summed
    /// over engines. Gated DMA static power is charged per channel-cycle.
    pub dma_busy_cycles: u64,
    /// Kernel launches issued by the host.
    pub kernel_launches: u64,
    /// Buffer allocation stalls taken (naive memory management).
    pub alloc_stalls: u64,
}

impl SimStats {
    /// Component-wise accumulation (for summing per-token stats into a
    /// whole-inference total). `total_cycles` is summed, which is correct
    /// for sequential token decoding.
    pub fn accumulate(&mut self, other: &SimStats) {
        self.total_cycles += other.total_cycles;
        self.hbm.read_bytes += other.hbm.read_bytes;
        self.hbm.write_bytes += other.hbm.write_bytes;
        self.hbm.read_transfers += other.hbm.read_transfers;
        self.hbm.write_transfers += other.hbm.write_transfers;
        self.ocm_read_bytes += other.ocm_read_bytes;
        self.ocm_write_bytes += other.ocm_write_bytes;
        self.mpe.macs += other.mpe.macs;
        self.mpe.busy_cycles += other.mpe.busy_cycles;
        self.mpe.tiles += other.mpe.tiles;
        self.sfu.elements += other.sfu.elements;
        self.sfu.busy_cycles += other.sfu.busy_cycles;
        self.sfu.ops += other.sfu.ops;
        self.dma_busy_cycles += other.dma_busy_cycles;
        self.kernel_launches += other.kernel_launches;
        self.alloc_stalls += other.alloc_stalls;
    }

    /// Total bytes moved on- and off-chip.
    #[must_use]
    pub fn total_traffic_bytes(&self) -> u64 {
        self.hbm.total_bytes() + self.ocm_read_bytes + self.ocm_write_bytes
    }

    /// Arithmetic intensity: MACs per off-chip byte (the roofline x-axis).
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.hbm.total_bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.mpe.macs as f64 / bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            total_cycles: Cycles(100),
            hbm: HbmCounters {
                read_bytes: 1000,
                write_bytes: 200,
                read_transfers: 3,
                write_transfers: 1,
            },
            ocm_read_bytes: 50,
            ocm_write_bytes: 60,
            mpe: MpeCounters {
                macs: 5000,
                busy_cycles: 80,
                tiles: 2,
            },
            sfu: SfuCounters {
                elements: 300,
                busy_cycles: 40,
                ops: 5,
            },
            dma_busy_cycles: 70,
            kernel_launches: 4,
            alloc_stalls: 2,
        }
    }

    #[test]
    fn accumulate_doubles_everything() {
        let mut a = sample();
        a.accumulate(&sample());
        assert_eq!(a.total_cycles, Cycles(200));
        assert_eq!(a.hbm.read_bytes, 2000);
        assert_eq!(a.mpe.macs, 10_000);
        assert_eq!(a.sfu.ops, 10);
        assert_eq!(a.kernel_launches, 8);
        assert_eq!(a.alloc_stalls, 4);
    }

    #[test]
    fn traffic_total() {
        let s = sample();
        assert_eq!(s.total_traffic_bytes(), 1200 + 110);
    }

    #[test]
    fn arithmetic_intensity_macs_per_byte() {
        let s = sample();
        assert!((s.arithmetic_intensity() - 5000.0 / 1200.0).abs() < 1e-12);
        let empty = SimStats::default();
        assert_eq!(empty.arithmetic_intensity(), 0.0);
    }
}
