//! Discrete-event scheduling primitives.
//!
//! The accelerator's pipeline model is built on two small pieces:
//!
//! * [`Timeline`] — per-resource busy-until tracking. Scheduling a segment
//!   on a resource starts it at `max(ready, resource_free)` and returns the
//!   occupied [`Span`]. Composing spans expresses both the *sequential*
//!   read–compute–write iteration (all stages on one resource) and the
//!   *streamed* iteration (stages on dedicated resources, overlapping).
//! * [`EventQueue`] — a classic time-ordered event heap, used where pure
//!   span composition is not enough (e.g. modelling asynchronous host
//!   completions) and by tests as an ordering oracle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cycles::Cycles;

/// Identifies a schedulable hardware resource in a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// A half-open occupied interval `[start, end)` on some resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First busy cycle.
    pub start: Cycles,
    /// One past the last busy cycle.
    pub end: Cycles,
}

impl Span {
    /// A zero-length span at `t`.
    #[must_use]
    pub fn empty_at(t: Cycles) -> Self {
        Self { start: t, end: t }
    }

    /// Duration of the span.
    #[must_use]
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// Tracks when each resource becomes free and accumulates per-resource busy
/// cycles (the input to gated-static power accounting).
#[derive(Debug, Clone)]
pub struct Timeline {
    free_at: Vec<Cycles>,
    busy: Vec<Cycles>,
}

impl Timeline {
    /// Creates a timeline for `resources` resources, all free at cycle 0.
    #[must_use]
    pub fn new(resources: usize) -> Self {
        Self {
            free_at: vec![Cycles::ZERO; resources],
            busy: vec![Cycles::ZERO; resources],
        }
    }

    /// Number of tracked resources.
    #[must_use]
    pub fn resources(&self) -> usize {
        self.free_at.len()
    }

    /// Schedules a segment of `duration` on `r`, starting no earlier than
    /// `ready` and no earlier than the resource's previous segment end.
    /// Returns the occupied span. Zero-duration segments return an empty
    /// span at the resolved start time without occupying the resource.
    pub fn schedule(&mut self, r: ResourceId, ready: Cycles, duration: Cycles) -> Span {
        let start = ready.max(self.free_at[r.0]);
        if duration == Cycles::ZERO {
            return Span::empty_at(start);
        }
        let end = start + duration;
        self.free_at[r.0] = end;
        self.busy[r.0] += duration;
        Span { start, end }
    }

    /// When resource `r` becomes free.
    #[must_use]
    pub fn free_at(&self, r: ResourceId) -> Cycles {
        self.free_at[r.0]
    }

    /// Total busy cycles accumulated on `r`.
    #[must_use]
    pub fn busy(&self, r: ResourceId) -> Cycles {
        self.busy[r.0]
    }

    /// The latest end time across all resources (makespan).
    #[must_use]
    pub fn makespan(&self) -> Cycles {
        self.free_at.iter().copied().fold(Cycles::ZERO, Cycles::max)
    }

    /// Advances every resource's free-at to at least `t` (a barrier),
    /// without accruing busy time.
    pub fn barrier(&mut self, t: Cycles) {
        for f in &mut self.free_at {
            *f = (*f).max(t);
        }
    }
}

/// A time-ordered event queue. Events with equal timestamps dequeue in
/// insertion order (stable), which keeps simulations deterministic.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Cycles, u64, usize)>>,
    payloads: Vec<Option<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at time `t`.
    pub fn push(&mut self, t: Cycles, payload: T) {
        let idx = self.payloads.len();
        self.payloads.push(Some(payload));
        self.heap.push(Reverse((t, self.seq, idx)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycles, T)> {
        let Reverse((t, _, idx)) = self.heap.pop()?;
        let payload = self.payloads[idx].take().expect("payload taken twice");
        Some((t, payload))
    }

    /// Timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_respects_ready_and_busy() {
        let mut tl = Timeline::new(2);
        let r = ResourceId(0);
        let s1 = tl.schedule(r, Cycles(5), Cycles(10));
        assert_eq!(
            s1,
            Span {
                start: Cycles(5),
                end: Cycles(15)
            }
        );
        // Ready earlier than resource-free: starts when the resource frees.
        let s2 = tl.schedule(r, Cycles(0), Cycles(3));
        assert_eq!(s2.start, Cycles(15));
        assert_eq!(tl.busy(r), Cycles(13));
        // Other resource is untouched.
        assert_eq!(tl.free_at(ResourceId(1)), Cycles::ZERO);
    }

    #[test]
    fn zero_duration_does_not_occupy() {
        let mut tl = Timeline::new(1);
        let r = ResourceId(0);
        let s = tl.schedule(r, Cycles(7), Cycles::ZERO);
        assert_eq!(s.duration(), Cycles::ZERO);
        assert_eq!(tl.free_at(r), Cycles::ZERO);
        assert_eq!(tl.busy(r), Cycles::ZERO);
    }

    #[test]
    fn makespan_is_max_over_resources() {
        let mut tl = Timeline::new(3);
        tl.schedule(ResourceId(0), Cycles(0), Cycles(10));
        tl.schedule(ResourceId(2), Cycles(5), Cycles(20));
        assert_eq!(tl.makespan(), Cycles(25));
    }

    #[test]
    fn barrier_pushes_free_at_forward() {
        let mut tl = Timeline::new(2);
        tl.schedule(ResourceId(0), Cycles(0), Cycles(4));
        tl.barrier(Cycles(100));
        let s = tl.schedule(ResourceId(1), Cycles(0), Cycles(1));
        assert_eq!(s.start, Cycles(100));
        // Barrier accrues no busy time.
        assert_eq!(tl.busy(ResourceId(1)), Cycles(1));
    }

    #[test]
    fn overlap_on_distinct_resources() {
        // Read on r0 and compute on r1 can overlap; the classic pipeline
        // shape: second tile's read overlaps first tile's compute.
        let mut tl = Timeline::new(2);
        let read = ResourceId(0);
        let comp = ResourceId(1);
        let r1 = tl.schedule(read, Cycles(0), Cycles(10));
        let c1 = tl.schedule(comp, r1.end, Cycles(10));
        let r2 = tl.schedule(read, r1.end, Cycles(10));
        let c2 = tl.schedule(comp, r2.end.max(c1.end), Cycles(10));
        assert_eq!(r2.start, Cycles(10), "tile-2 read overlaps tile-1 compute");
        assert_eq!(c2.end, Cycles(30), "steady state: one stage per 10 cycles");
    }

    #[test]
    fn event_queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycles(30), "c");
        q.push(Cycles(10), "a");
        q.push(Cycles(20), "b");
        assert_eq!(q.peek_time(), Some(Cycles(10)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn event_queue_ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Cycles(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn event_queue_len_tracks() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycles(1), ());
        q.push(Cycles(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
