//! On-chip memory (BRAM + URAM) model.
//!
//! The U280 fabric provides two SRAM resources: 4032 BRAM18 blocks
//! (18 Kbit each, ≈ 9 MiB total) and 960 URAM blocks (288 Kbit each,
//! ≈ 33.75 MiB total). The memory-reuse strategy keeps activations and
//! other short-lived tensors resident here instead of round-tripping
//! through HBM; [`OcmPool`] is the byte-granular allocator the memory
//! planner drives, with first-fit placement and cyclic (loop-back) reuse of
//! freed segments, plus high-water-mark accounting so resource utilization
//! can be reported per design point.

use crate::cycles::Cycles;

/// Which on-chip SRAM family a buffer lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OcmKind {
    /// 18 Kbit block RAMs — many small, narrow banks.
    Bram,
    /// 288 Kbit ultra RAMs — fewer, larger banks.
    Uram,
}

/// Static parameters of one on-chip memory family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcmConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes per cycle a single access port sustains.
    pub bytes_per_cycle: f64,
    /// Access latency in cycles (BRAM/URAM are 1–2 cycles; URAM cascades
    /// add a little).
    pub access_latency: Cycles,
}

impl OcmConfig {
    /// U280 BRAM: 4032 × 18 Kbit ≈ 9.07 MiB, wide banked access.
    #[must_use]
    pub fn u280_bram() -> Self {
        Self {
            capacity_bytes: 4032 * 18 * 1024 / 8,
            bytes_per_cycle: 128.0,
            access_latency: Cycles(2),
        }
    }

    /// U280 URAM: 960 × 288 Kbit ≈ 33.75 MiB.
    #[must_use]
    pub fn u280_uram() -> Self {
        Self {
            capacity_bytes: 960 * 288 * 1024 / 8,
            bytes_per_cycle: 128.0,
            access_latency: Cycles(3),
        }
    }
}

/// A handle to an allocated on-chip segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Byte offset inside the pool.
    pub offset: u64,
    /// Segment length in bytes.
    pub len: u64,
}

/// Allocation failure: not enough contiguous free space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcmFull {
    /// Bytes requested.
    pub requested: u64,
    /// Largest contiguous free block at the time of the request.
    pub largest_free: u64,
}

impl std::fmt::Display for OcmFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "on-chip pool full: requested {} B, largest free block {} B",
            self.requested, self.largest_free
        )
    }
}

impl std::error::Error for OcmFull {}

/// A byte-granular first-fit allocator over one on-chip memory family.
///
/// Free segments are kept sorted by offset and coalesced on free, so the
/// cyclic reuse pattern (alloc → use → free → realloc) recycles the same
/// region — exactly the "loop-back" buffer management the paper describes.
#[derive(Debug, Clone)]
pub struct OcmPool {
    kind: OcmKind,
    config: OcmConfig,
    /// Sorted, non-overlapping, non-adjacent free segments.
    free: Vec<Segment>,
    in_use: u64,
    high_water: u64,
    /// Lifetime counters.
    allocs: u64,
    frees: u64,
    read_bytes: u64,
    write_bytes: u64,
}

impl OcmPool {
    /// Creates a pool covering the whole configured capacity.
    #[must_use]
    pub fn new(kind: OcmKind, config: OcmConfig) -> Self {
        Self {
            kind,
            config,
            free: vec![Segment {
                offset: 0,
                len: config.capacity_bytes,
            }],
            in_use: 0,
            high_water: 0,
            allocs: 0,
            frees: 0,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// The memory family this pool models.
    #[must_use]
    pub fn kind(&self) -> OcmKind {
        self.kind
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &OcmConfig {
        &self.config
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes ever simultaneously allocated.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Number of allocations performed.
    #[must_use]
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Bytes read from this pool so far.
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes written to this pool so far.
    #[must_use]
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Largest contiguous free block.
    #[must_use]
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|s| s.len).max().unwrap_or(0)
    }

    /// First-fit allocation of `len` bytes.
    pub fn alloc(&mut self, len: u64) -> Result<Segment, OcmFull> {
        assert!(len > 0, "zero-length allocation");
        let pos = self.free.iter().position(|s| s.len >= len);
        self.take_from(pos, len)
    }

    /// Best-fit allocation: picks the smallest free block that holds
    /// `len`, minimizing leftover fragmentation.
    pub fn alloc_best_fit(&mut self, len: u64) -> Result<Segment, OcmFull> {
        assert!(len > 0, "zero-length allocation");
        let pos = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len >= len)
            .min_by_key(|(_, s)| s.len)
            .map(|(i, _)| i);
        self.take_from(pos, len)
    }

    fn take_from(&mut self, pos: Option<usize>, len: u64) -> Result<Segment, OcmFull> {
        match pos {
            Some(i) => {
                let seg = self.free[i];
                let out = Segment {
                    offset: seg.offset,
                    len,
                };
                if seg.len == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = Segment {
                        offset: seg.offset + len,
                        len: seg.len - len,
                    };
                }
                self.in_use += len;
                self.high_water = self.high_water.max(self.in_use);
                self.allocs += 1;
                Ok(out)
            }
            None => Err(OcmFull {
                requested: len,
                largest_free: self.largest_free(),
            }),
        }
    }

    /// Returns a segment to the pool, coalescing with neighbours.
    ///
    /// # Panics
    /// Panics if the segment overlaps a free region (double free).
    pub fn free(&mut self, seg: Segment) {
        assert!(seg.len > 0, "freeing empty segment");
        assert!(
            seg.offset + seg.len <= self.config.capacity_bytes,
            "segment outside pool"
        );
        // Insertion point by offset.
        let idx = self.free.partition_point(|s| s.offset < seg.offset);
        if let Some(prev) = idx.checked_sub(1).map(|i| self.free[i]) {
            assert!(
                prev.offset + prev.len <= seg.offset,
                "double free (overlaps previous)"
            );
        }
        if idx < self.free.len() {
            let next = self.free[idx];
            assert!(
                seg.offset + seg.len <= next.offset,
                "double free (overlaps next)"
            );
        }
        self.free.insert(idx, seg);
        self.in_use -= seg.len;
        self.frees += 1;
        // Coalesce with next, then with previous.
        if idx + 1 < self.free.len()
            && self.free[idx].offset + self.free[idx].len == self.free[idx + 1].offset
        {
            self.free[idx].len += self.free[idx + 1].len;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].offset + self.free[idx - 1].len == self.free[idx].offset {
            self.free[idx - 1].len += self.free[idx].len;
            self.free.remove(idx);
        }
    }

    /// Cycle cost of moving `bytes` through one port of this memory.
    #[must_use]
    pub fn access_cost(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        self.config.access_latency + Cycles::for_bytes(bytes, self.config.bytes_per_cycle)
    }

    /// Records a read of `bytes` and returns the cycle cost.
    pub fn read(&mut self, bytes: u64) -> Cycles {
        self.read_bytes += bytes;
        self.access_cost(bytes)
    }

    /// Records a write of `bytes` and returns the cycle cost.
    pub fn write(&mut self, bytes: u64) -> Cycles {
        self.write_bytes += bytes;
        self.access_cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> OcmPool {
        OcmPool::new(
            OcmKind::Uram,
            OcmConfig {
                capacity_bytes: 1000,
                bytes_per_cycle: 64.0,
                access_latency: Cycles(3),
            },
        )
    }

    #[test]
    fn capacities_match_datasheet() {
        assert_eq!(OcmConfig::u280_bram().capacity_bytes, 9_289_728);
        assert_eq!(OcmConfig::u280_uram().capacity_bytes, 35_389_440);
    }

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut p = pool();
        let a = p.alloc(400).unwrap();
        let b = p.alloc(600).unwrap();
        assert_eq!(p.in_use(), 1000);
        assert!(p.alloc(1).is_err());
        p.free(a);
        p.free(b);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.largest_free(), 1000, "freed segments must coalesce");
    }

    #[test]
    fn first_fit_reuses_freed_hole() {
        let mut p = pool();
        let a = p.alloc(100).unwrap();
        let _b = p.alloc(100).unwrap();
        p.free(a);
        // Cyclic reuse: the next fitting allocation lands back at offset 0.
        let c = p.alloc(80).unwrap();
        assert_eq!(c.offset, 0);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut p = pool();
        let a = p.alloc(300).unwrap();
        let b = p.alloc(300).unwrap();
        p.free(a);
        p.free(b);
        let _ = p.alloc(100).unwrap();
        assert_eq!(p.high_water(), 600);
    }

    #[test]
    fn alloc_failure_reports_largest_block() {
        let mut p = pool();
        let a = p.alloc(500).unwrap();
        let _b = p.alloc(500).unwrap();
        p.free(a);
        let err = p.alloc(600).unwrap_err();
        assert_eq!(err.requested, 600);
        assert_eq!(err.largest_free, 500);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = pool();
        let a = p.alloc(100).unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn coalescing_middle_segment() {
        let mut p = pool();
        let a = p.alloc(200).unwrap();
        let b = p.alloc(200).unwrap();
        let c = p.alloc(200).unwrap();
        p.free(a);
        p.free(c);
        // c (400..600) coalesces with the untouched tail (600..1000).
        assert_eq!(p.largest_free(), 600);
        p.free(b);
        assert_eq!(p.largest_free(), 1000, "all three coalesce with the tail");
    }

    #[test]
    fn access_cost_and_counters() {
        let mut p = pool();
        let c = p.read(128);
        assert_eq!(c, Cycles(3) + Cycles(2));
        p.write(64);
        assert_eq!(p.read_bytes(), 128);
        assert_eq!(p.write_bytes(), 64);
        assert_eq!(p.access_cost(0), Cycles::ZERO);
    }

    #[test]
    fn best_fit_prefers_tight_holes() {
        let mut p = pool();
        // Create holes of 100 (at 0) and 300 (at 200..500) with a live
        // block separating them.
        let a = p.alloc(100).unwrap(); // 0..100
        let _b = p.alloc(100).unwrap(); // 100..200 (stays live)
        let c = p.alloc(300).unwrap(); // 200..500
        p.free(a);
        p.free(c);
        // First-fit would land an 80-byte request at offset 0; best-fit
        // also picks the 100-byte hole (it is the tightest).
        let d = p.alloc_best_fit(80).unwrap();
        assert_eq!(d.offset, 0);
        // A 250-byte request must take the 300-hole under both policies.
        let e = p.alloc_best_fit(250).unwrap();
        assert_eq!(e.offset, 200);
        // Now only 20-at-80 and 50-at-450 and tail 500..1000 are free; a
        // 30-byte request best-fits the 50-byte hole, not the tail.
        let f = p.alloc_best_fit(30).unwrap();
        assert_eq!(f.offset, 450);
    }

    #[test]
    fn best_fit_errors_like_first_fit() {
        let mut p = pool();
        let _a = p.alloc(990).unwrap();
        let err = p.alloc_best_fit(100).unwrap_err();
        assert_eq!(err.largest_free, 10);
    }

    #[test]
    fn alloc_counts() {
        let mut p = pool();
        let a = p.alloc(10).unwrap();
        let _ = p.alloc(10).unwrap();
        p.free(a);
        assert_eq!(p.alloc_count(), 2);
    }
}
