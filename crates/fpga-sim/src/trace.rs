//! Timeline trace capture and ASCII Gantt rendering.
//!
//! The pipeline scheduler can record every scheduled segment into a
//! bounded [`TraceBuffer`]; [`TraceBuffer::render_gantt`] draws the
//! read/compute/write overlap as text — the visual proof that the streamed
//! iteration actually overlaps stages while the sequential one staircases.

use crate::cycles::Cycles;
use crate::event::Span;

/// One recorded segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Display name of the resource (e.g. "DMA-RD", "MPE").
    pub resource: &'static str,
    /// Occupied interval.
    pub span: Span,
    /// Short label (e.g. the op name).
    pub label: String,
}

/// A bounded buffer of trace events. When full, further events are counted
/// but dropped, so tracing can stay on in long runs without unbounded
/// memory.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer retaining at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (dropped silently past capacity).
    pub fn record(&mut self, resource: &'static str, span: Span, label: impl Into<String>) {
        if span.duration() == Cycles::ZERO {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                resource,
                span,
                label: label.into(),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events dropped after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Renders the captured window as an ASCII Gantt chart of `width`
    /// character columns, one row per distinct resource (in first-seen
    /// order).
    #[must_use]
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        if self.events.is_empty() {
            return String::from("(no trace events)\n");
        }
        let t0 = self.events.iter().map(|e| e.span.start).min().unwrap();
        let t1 = self.events.iter().map(|e| e.span.end).max().unwrap();
        let total = (t1 - t0).0.max(1);
        // Stable resource order: first appearance.
        let mut resources: Vec<&'static str> = Vec::new();
        for e in &self.events {
            if !resources.contains(&e.resource) {
                resources.push(e.resource);
            }
        }
        let name_w = resources.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>name_w$} | window {}..{} ({} cycles)\n",
            "", t0.0, t1.0, total
        ));
        for res in resources {
            let mut row = vec![b'.'; width];
            for e in self.events.iter().filter(|e| e.resource == res) {
                let a = ((e.span.start - t0).0 as f64 / total as f64 * width as f64) as usize;
                let b = (((e.span.end - t0).0 as f64 / total as f64 * width as f64).ceil()
                    as usize)
                    .min(width);
                for cell in &mut row[a.min(width.saturating_sub(1))..b] {
                    *cell = b'#';
                }
            }
            out.push_str(&format!(
                "{res:>name_w$} | {}\n",
                String::from_utf8(row).expect("ascii row")
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("(+{} dropped)\n", self.dropped));
        }
        out
    }
}

impl TraceBuffer {
    /// Exports the captured window in the Chrome trace-event format
    /// (`chrome://tracing` / Perfetto): one complete ("X") event per
    /// segment, resources as thread names. Timestamps are microseconds at
    /// the given clock.
    #[must_use]
    pub fn to_chrome_json(&self, clock: &crate::cycles::ClockDomain) -> String {
        let mut resources: Vec<&'static str> = Vec::new();
        for e in &self.events {
            if !resources.contains(&e.resource) {
                resources.push(e.resource);
            }
        }
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::from("[");
        let mut first = true;
        for (tid, res) in resources.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                esc(res)
            ));
        }
        for e in &self.events {
            let tid = resources.iter().position(|r| *r == e.resource).unwrap();
            let ts = clock.to_micros(e.span.start);
            let dur = clock.to_micros(e.span.duration());
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3}}}",
                esc(&e.label)
            ));
        }
        out.push(']');
        out
    }

    /// Appends the captured window to a shared [`ChromeTrace`] under
    /// `pid`, converting cycle spans to microseconds at the given clock.
    /// This is how the simulator timeline lands in the same Perfetto file
    /// as real host wall-time spans: one process per time domain.
    ///
    /// [`ChromeTrace`]: speedllm_telemetry::export::ChromeTrace
    pub fn to_chrome_track(
        &self,
        clock: &crate::cycles::ClockDomain,
        pid: u32,
        trace: &mut speedllm_telemetry::export::ChromeTrace,
    ) {
        if self.events.is_empty() {
            return;
        }
        trace.meta_process_name(pid, "fpga-sim (cycle time)");
        let mut resources: Vec<&'static str> = Vec::new();
        for e in &self.events {
            let tid = match resources.iter().position(|r| *r == e.resource) {
                Some(i) => i as u32,
                None => {
                    resources.push(e.resource);
                    let tid = (resources.len() - 1) as u32;
                    trace.meta_thread_name(pid, tid, e.resource);
                    tid
                }
            };
            trace.complete(
                pid,
                tid,
                &e.label,
                clock.to_micros(e.span.start),
                clock.to_micros(e.span.duration()),
                &[],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: u64, b: u64) -> Span {
        Span {
            start: Cycles(a),
            end: Cycles(b),
        }
    }

    #[test]
    fn records_and_drops_past_capacity() {
        let mut t = TraceBuffer::new(2);
        t.record("A", span(0, 1), "x");
        t.record("A", span(1, 2), "y");
        t.record("A", span(2, 3), "z");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert!(t.render_gantt(20).contains("(+1 dropped)"));
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn zero_length_spans_ignored() {
        let mut t = TraceBuffer::new(10);
        t.record("A", span(5, 5), "empty");
        assert!(t.events().is_empty());
    }

    #[test]
    fn gantt_contains_all_resources() {
        let mut t = TraceBuffer::new(10);
        t.record("DMA-RD", span(0, 10), "r0");
        t.record("MPE", span(10, 20), "c0");
        t.record("DMA-WR", span(20, 30), "w0");
        let g = t.render_gantt(30);
        assert!(g.contains("DMA-RD"));
        assert!(g.contains("MPE"));
        assert!(g.contains("DMA-WR"));
        assert!(g.contains('#'));
    }

    #[test]
    fn gantt_overlap_visible() {
        let mut t = TraceBuffer::new(10);
        t.record("R", span(0, 20), "a");
        t.record("C", span(10, 30), "b");
        let g = t.render_gantt(30);
        let lines: Vec<&str> = g.lines().collect();
        // Row for R starts with # and row for C has # near the middle.
        let r_line = lines.iter().find(|l| l.starts_with("R")).unwrap();
        let c_line = lines.iter().find(|l| l.starts_with("C")).unwrap();
        assert!(r_line.contains('#'));
        assert!(c_line.contains('#'));
    }

    #[test]
    fn chrome_json_is_valid_shape() {
        let mut t = TraceBuffer::new(10);
        t.record("MPE", span(0, 300), "k0:compute");
        t.record("DMA-RD", span(0, 150), "k0:read \"quoted\"");
        let clock = crate::cycles::ClockDomain::U280_KERNEL;
        let json = t.to_chrome_json(&clock);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        // 2 metadata + 2 events.
        assert_eq!(json.matches("\"ph\"").count(), 4);
        assert!(json.contains("\"name\":\"MPE\""));
        // Quotes in labels must be escaped: no bare `"quoted"` sequence
        // breaking the JSON (balanced quote count).
        assert_eq!(json.matches('"').count() % 2, 0);
        // 300 cycles at 300 MHz = 1 us.
        assert!(json.contains("\"dur\":1.000"));
    }

    #[test]
    fn chrome_track_joins_shared_trace() {
        let mut t = TraceBuffer::new(10);
        t.record("MPE", span(0, 300), "k0:compute");
        t.record("DMA-RD", span(0, 150), "k0:read");
        let mut trace = speedllm_telemetry::export::ChromeTrace::new();
        t.to_chrome_track(&crate::cycles::ClockDomain::U280_KERNEL, 2, &mut trace);
        let json = trace.finish();
        assert!(json.contains("fpga-sim (cycle time)"));
        assert!(json.contains("\"pid\":2"));
        // 1 process_name + 2 thread_name + 2 complete events.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // Empty buffers append nothing, not even process metadata.
        let mut empty = speedllm_telemetry::export::ChromeTrace::new();
        TraceBuffer::new(4).to_chrome_track(
            &crate::cycles::ClockDomain::U280_KERNEL,
            2,
            &mut empty,
        );
        assert!(empty.is_empty());
    }

    #[test]
    fn chrome_json_empty_trace() {
        let t = TraceBuffer::new(4);
        let json = t.to_chrome_json(&crate::cycles::ClockDomain::U280_KERNEL);
        assert_eq!(json, "[]");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = TraceBuffer::new(4);
        assert_eq!(t.render_gantt(40), "(no trace events)\n");
    }
}
