//! Cycle arithmetic and clock domains.
//!
//! All device timing is counted in integer kernel-clock cycles
//! ([`Cycles`]); conversion to wall-clock time happens only at reporting
//! boundaries through a [`ClockDomain`]. Keeping time integral makes the
//! simulator deterministic and the pipeline recurrences exact.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A non-negative duration or timestamp in kernel-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Saturating subtraction (useful for slack computations).
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two cycle counts.
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Cycle count needed to move `bytes` at `bytes_per_cycle`, rounded up.
    /// Zero-byte transfers cost zero cycles.
    #[must_use]
    pub fn for_bytes(bytes: u64, bytes_per_cycle: f64) -> Cycles {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        if bytes == 0 {
            return Cycles::ZERO;
        }
        Cycles((bytes as f64 / bytes_per_cycle).ceil() as u64)
    }

    /// Cycle count needed to process `items` at `items_per_cycle`, rounded
    /// up.
    #[must_use]
    pub fn for_items(items: u64, items_per_cycle: f64) -> Cycles {
        assert!(items_per_cycle > 0.0, "throughput must be positive");
        if items == 0 {
            return Cycles::ZERO;
        }
        Cycles((items as f64 / items_per_cycle).ceil() as u64)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock domain with a fixed frequency; converts cycles to seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    freq_hz: f64,
}

impl ClockDomain {
    /// The U280 kernel clock used throughout the reproduction (300 MHz, the
    /// typical Vitis kernel target on this card).
    pub const U280_KERNEL: ClockDomain = ClockDomain { freq_hz: 300.0e6 };

    /// Creates a clock domain. `freq_hz` must be positive.
    #[must_use]
    pub fn new(freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "frequency must be positive");
        Self { freq_hz }
    }

    /// The frequency in hertz.
    #[must_use]
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Converts a cycle count to seconds.
    #[must_use]
    pub fn to_seconds(&self, c: Cycles) -> f64 {
        c.0 as f64 / self.freq_hz
    }

    /// Converts a cycle count to microseconds.
    #[must_use]
    pub fn to_micros(&self, c: Cycles) -> f64 {
        self.to_seconds(c) * 1e6
    }

    /// Bytes per cycle delivered by a link of `bytes_per_sec` in this
    /// domain.
    #[must_use]
    pub fn bytes_per_cycle(&self, bytes_per_sec: f64) -> f64 {
        bytes_per_sec / self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(3).max(Cycles(9)), Cycles(9));
        assert_eq!(Cycles(3).saturating_sub(Cycles(9)), Cycles::ZERO);
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Cycles(1) - Cycles(2);
    }

    #[test]
    fn for_bytes_rounds_up() {
        assert_eq!(Cycles::for_bytes(0, 64.0), Cycles::ZERO);
        assert_eq!(Cycles::for_bytes(64, 64.0), Cycles(1));
        assert_eq!(Cycles::for_bytes(65, 64.0), Cycles(2));
        assert_eq!(Cycles::for_bytes(100, 3.5), Cycles(29));
    }

    #[test]
    fn for_items_rounds_up() {
        assert_eq!(Cycles::for_items(9, 4.0), Cycles(3));
        assert_eq!(Cycles::for_items(8, 4.0), Cycles(2));
        assert_eq!(Cycles::for_items(0, 4.0), Cycles::ZERO);
    }

    #[test]
    fn clock_conversion() {
        let clk = ClockDomain::new(300.0e6);
        assert!((clk.to_seconds(Cycles(300_000_000)) - 1.0).abs() < 1e-12);
        assert!((clk.to_micros(Cycles(300)) - 1.0).abs() < 1e-9);
        // 460.8 GB/s on a 300 MHz clock = 1536 B/cycle.
        assert!((clk.bytes_per_cycle(460.8e9) - 1536.0).abs() < 1e-6);
    }

    #[test]
    fn u280_kernel_clock_is_300mhz() {
        assert_eq!(ClockDomain::U280_KERNEL.freq_hz(), 300.0e6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::new(0.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Cycles(2) < Cycles(10));
        let mut v = vec![Cycles(5), Cycles(1), Cycles(3)];
        v.sort();
        assert_eq!(v, vec![Cycles(1), Cycles(3), Cycles(5)]);
    }
}
