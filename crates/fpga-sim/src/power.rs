//! Power and energy model.
//!
//! The model is **activity-based with power gating**: dynamic energy is a
//! coefficient per event (pJ/byte moved, pJ/MAC, pJ/SFU element), and
//! static power is charged per component only over the cycles that
//! component was busy (idle blocks are clock-gated), plus a small always-on
//! baseline. This is the *incremental* energy above board idle — the
//! quantity whose ratios between design variants Fig 2(b) reports; absolute
//! board wattage is not modelled (see DESIGN.md §2 and §8).
//!
//! Default coefficients come from public figures: HBM2 ≈ 3.9 pJ/bit
//! (≈ 31 pJ/byte), on-chip SRAM ≈ 0.1–0.2 pJ/bit, fp32 DSP MAC ≈ 8 pJ on
//! 16 nm fabric.

use crate::cycles::{ClockDomain, Cycles};
use crate::stats::SimStats;

/// Energy coefficients and gated static powers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Kernel clock used to convert cycles to seconds.
    pub clock: ClockDomain,
    /// Always-on incremental baseline (controller, monitors), watts.
    pub baseline_w: f64,
    /// MPE static power while busy, watts.
    pub mpe_static_w: f64,
    /// DMA + HBM PHY static power while transferring, watts **per
    /// pseudo-channel**; multiplied by [`SimStats::dma_busy_cycles`], which
    /// is accumulated in channel-cycles (engine busy time × channel count).
    pub dma_static_w: f64,
    /// SFU static power while busy, watts.
    pub sfu_static_w: f64,
    /// Dynamic energy per HBM byte, picojoules.
    pub hbm_pj_per_byte: f64,
    /// Dynamic energy per on-chip byte, picojoules.
    pub ocm_pj_per_byte: f64,
    /// Dynamic energy per MAC, picojoules.
    pub mac_pj: f64,
    /// Dynamic energy per SFU element, picojoules.
    pub sfu_elem_pj: f64,
    /// Host/kernel-dispatch energy per launch, nanojoules.
    pub launch_nj: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::u280()
    }
}

impl PowerModel {
    /// The calibrated U280 model used throughout the reproduction.
    #[must_use]
    pub fn u280() -> Self {
        Self {
            clock: ClockDomain::U280_KERNEL,
            baseline_w: 0.45,
            mpe_static_w: 6.0,
            dma_static_w: 0.3,
            sfu_static_w: 1.5,
            hbm_pj_per_byte: 31.0,
            ocm_pj_per_byte: 1.0,
            mac_pj: 8.0,
            sfu_elem_pj: 4.0,
            launch_nj: 400.0,
        }
    }

    /// Computes the energy breakdown of a run.
    #[must_use]
    pub fn energy(&self, stats: &SimStats) -> EnergyBreakdown {
        let pj = 1e-12;
        let nj = 1e-9;
        let hbm_j = stats.hbm.total_bytes() as f64 * self.hbm_pj_per_byte * pj;
        let ocm_j =
            (stats.ocm_read_bytes + stats.ocm_write_bytes) as f64 * self.ocm_pj_per_byte * pj;
        let mpe_dyn_j = stats.mpe.macs as f64 * self.mac_pj * pj;
        let sfu_dyn_j = stats.sfu.elements as f64 * self.sfu_elem_pj * pj;
        let launch_j = stats.kernel_launches as f64 * self.launch_nj * nj;

        let secs = |c: u64| self.clock.to_seconds(Cycles(c));
        let mpe_static_j = secs(stats.mpe.busy_cycles) * self.mpe_static_w;
        let dma_static_j = secs(stats.dma_busy_cycles) * self.dma_static_w;
        let sfu_static_j = secs(stats.sfu.busy_cycles) * self.sfu_static_w;
        let baseline_j = self.clock.to_seconds(stats.total_cycles) * self.baseline_w;

        EnergyBreakdown {
            hbm_j,
            ocm_j,
            mpe_dyn_j,
            sfu_dyn_j,
            launch_j,
            mpe_static_j,
            dma_static_j,
            sfu_static_j,
            baseline_j,
        }
    }
}

/// Joules attributed to each mechanism.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic HBM access energy.
    pub hbm_j: f64,
    /// Dynamic on-chip memory energy.
    pub ocm_j: f64,
    /// Dynamic MPE arithmetic energy.
    pub mpe_dyn_j: f64,
    /// Dynamic SFU arithmetic energy.
    pub sfu_dyn_j: f64,
    /// Host kernel-dispatch energy.
    pub launch_j: f64,
    /// Gated MPE static energy.
    pub mpe_static_j: f64,
    /// Gated DMA/HBM-PHY static energy.
    pub dma_static_j: f64,
    /// Gated SFU static energy.
    pub sfu_static_j: f64,
    /// Always-on baseline energy.
    pub baseline_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.hbm_j
            + self.ocm_j
            + self.mpe_dyn_j
            + self.sfu_dyn_j
            + self.launch_j
            + self.mpe_static_j
            + self.dma_static_j
            + self.sfu_static_j
            + self.baseline_j
    }

    /// Average power over a run of `total` cycles in `clock`.
    #[must_use]
    pub fn avg_power_w(&self, clock: &ClockDomain, total: Cycles) -> f64 {
        let secs = clock.to_seconds(total);
        if secs == 0.0 {
            return 0.0;
        }
        self.total_j() / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::HbmCounters;
    use crate::mpe::MpeCounters;
    use crate::sfu::SfuCounters;

    fn stats(cycles: u64, hbm_bytes: u64, macs: u64) -> SimStats {
        SimStats {
            total_cycles: Cycles(cycles),
            hbm: HbmCounters {
                read_bytes: hbm_bytes,
                ..Default::default()
            },
            mpe: MpeCounters {
                macs,
                busy_cycles: cycles / 2,
                tiles: 1,
            },
            sfu: SfuCounters::default(),
            ..Default::default()
        }
    }

    #[test]
    fn empty_run_costs_nothing() {
        let pm = PowerModel::u280();
        let e = pm.energy(&SimStats::default());
        assert_eq!(e.total_j(), 0.0);
    }

    #[test]
    fn hbm_dominates_weight_streaming() {
        // Streaming 60 MB of weights (stories15M f32) at ~15M MACs: HBM
        // energy should far exceed MAC energy — decode is memory-bound in
        // energy too.
        let pm = PowerModel::u280();
        let e = pm.energy(&stats(45_000, 60 << 20, 15_000_000));
        assert!(
            e.hbm_j > e.mpe_dyn_j * 10.0,
            "hbm {} vs mpe {}",
            e.hbm_j,
            e.mpe_dyn_j
        );
    }

    #[test]
    fn energy_scales_linearly_with_traffic() {
        let pm = PowerModel::u280();
        let e1 = pm.energy(&stats(1000, 1 << 20, 0));
        let e2 = pm.energy(&stats(1000, 2 << 20, 0));
        assert!((e2.hbm_j / e1.hbm_j - 2.0).abs() < 1e-9);
    }

    #[test]
    fn longer_idle_run_costs_more_baseline() {
        let pm = PowerModel::u280();
        let fast = pm.energy(&stats(10_000, 1 << 20, 1_000_000));
        let slow = pm.energy(&stats(100_000, 1 << 20, 1_000_000));
        assert!(slow.baseline_j > fast.baseline_j * 9.0);
        // Dynamic parts are identical.
        assert_eq!(slow.hbm_j, fast.hbm_j);
    }

    #[test]
    fn avg_power_is_energy_over_time() {
        let pm = PowerModel::u280();
        let s = stats(300_000_000, 1 << 30, 1_000_000_000); // 1 second
        let e = pm.energy(&s);
        let p = e.avg_power_w(&pm.clock, s.total_cycles);
        assert!((p - e.total_j()).abs() < 1e-9, "1-second run: W == J");
        assert_eq!(e.avg_power_w(&pm.clock, Cycles::ZERO), 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let pm = PowerModel::u280();
        let mut s = stats(50_000, 10 << 20, 5_000_000);
        s.kernel_launches = 100;
        s.sfu = SfuCounters {
            elements: 10_000,
            busy_cycles: 5_000,
            ops: 50,
        };
        s.dma_busy_cycles = 20_000;
        s.ocm_read_bytes = 1 << 20;
        let e = pm.energy(&s);
        let sum = e.hbm_j
            + e.ocm_j
            + e.mpe_dyn_j
            + e.sfu_dyn_j
            + e.launch_j
            + e.mpe_static_j
            + e.dma_static_j
            + e.sfu_static_j
            + e.baseline_j;
        assert!((sum - e.total_j()).abs() < 1e-15);
        assert!(e.launch_j > 0.0 && e.ocm_j > 0.0 && e.sfu_dyn_j > 0.0);
    }
}
