//! # speedllm-fpga-sim
//!
//! A cycle-approximate model of the Xilinx Alveo U280 accelerator card —
//! the device substrate of the SpeedLLM reproduction (see DESIGN.md §2 for
//! the substitution argument; absolute cycle counts are approximate, but
//! the bottleneck structure of the real card is preserved).
//!
//! Components, mirroring Fig. 1 of the paper:
//!
//! * [`hbm`] — the 32-pseudo-channel HBM2 stack (bandwidth, latency,
//!   bursts, traffic counters).
//! * [`ocm`] — BRAM/URAM on-chip memories with a first-fit, cyclically
//!   reusing byte allocator.
//! * [`mpe`] — the DSP-based Matrix Processing Engine timing model
//!   (fp32 and int8 design points).
//! * [`sfu`] — the Special Function Unit (softmax, rmsnorm, RoPE, SiLU,
//!   element-wise ops).
//! * [`dma`] — AXI stream engines between HBM and on-chip buffers.
//! * [`event`] — resource timelines and an event queue; the substrate the
//!   streamed pipeline recurrence is built on.
//! * [`resources`] — the XCU280 fabric budget and per-block utilization
//!   estimation; designs that do not fit are rejected.
//! * [`power`] — activity-based energy model with per-component power
//!   gating.
//! * [`stats`] / [`trace`] — run statistics and ASCII Gantt tracing.

#![warn(missing_docs)]

pub mod cycles;
pub mod dma;
pub mod event;
pub mod hbm;
pub mod mpe;
pub mod ocm;
pub mod power;
pub mod resources;
pub mod sfu;
pub mod stats;
pub mod trace;

pub use cycles::{ClockDomain, Cycles};
pub use event::{ResourceId, Span, Timeline};
pub use hbm::{Hbm, HbmConfig};
pub use mpe::{Mpe, MpeConfig, Precision};
pub use ocm::{OcmConfig, OcmKind, OcmPool};
pub use power::{EnergyBreakdown, PowerModel};
pub use resources::Resources;
pub use sfu::{Sfu, SfuKind};
pub use stats::SimStats;
