//! Matrix Processing Engine (MPE) timing model.
//!
//! The MPE is a DSP-based array of `lanes` row units, each accumulating
//! `vec_width` multiply-accumulates per cycle — the structure behind
//! Fig. 1's "Matrix Processing Engine". A weight tile of `rows × cols`
//! takes `ceil(rows/lanes) × ceil(cols/vec_width)` issue cycles plus the
//! accumulator pipeline fill. In int8 mode each DSP slice packs two MACs,
//! doubling effective width — the mixed-precision advantage the paper
//! attributes to FPGAs.

use crate::cycles::Cycles;

/// Arithmetic mode of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE 754 single precision (llama2.c default).
    Fp32,
    /// Q8_0 int8 weights with f32 group rescale.
    Int8,
    /// Q4_0 nibble-packed int4 weights with f32 group rescale.
    Int4,
}

impl Precision {
    /// Bits per stored weight element (group-scale overhead is counted by
    /// the quantizer, not here).
    #[must_use]
    pub fn weight_bits(&self) -> usize {
        match self {
            Precision::Fp32 => 32,
            Precision::Int8 => 8,
            Precision::Int4 => 4,
        }
    }

    /// MACs one DSP slice retires per cycle in this mode.
    #[must_use]
    pub fn macs_per_dsp(&self) -> f64 {
        match self {
            Precision::Fp32 => 0.2, // fp32 MAC ≈ 5 DSP48E2 slices
            Precision::Int8 => 2.0, // DSP48E2 packs two int8 MACs
            Precision::Int4 => 4.0, // and four int4 MACs
        }
    }
}

/// Static configuration of the MPE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpeConfig {
    /// Parallel row units (output rows computed concurrently).
    pub lanes: usize,
    /// MACs per lane per cycle (dot-product vector width).
    pub vec_width: usize,
    /// Accumulator pipeline depth (fill/drain cost per tile).
    pub pipeline_depth: u64,
    /// Arithmetic mode.
    pub precision: Precision,
}

impl Default for MpeConfig {
    fn default() -> Self {
        Self::u280_fp32()
    }
}

impl MpeConfig {
    /// The shipped fp32 design point: 64 lanes × 8-wide = 512 MACs/cycle
    /// (≈ 2560 DSPs of the U280's 9024; 307 GFLOP/s at 300 MHz).
    #[must_use]
    pub fn u280_fp32() -> Self {
        Self {
            lanes: 64,
            vec_width: 8,
            pipeline_depth: 12,
            precision: Precision::Fp32,
        }
    }

    /// The int8 design point: same DSP budget, 2 MACs per DSP.
    #[must_use]
    pub fn u280_int8() -> Self {
        Self {
            lanes: 64,
            vec_width: 80,
            pipeline_depth: 10,
            precision: Precision::Int8,
        }
    }

    /// The int4 design point: same DSP budget, 4 MACs per DSP.
    #[must_use]
    pub fn u280_int4() -> Self {
        Self {
            lanes: 64,
            vec_width: 160,
            pipeline_depth: 10,
            precision: Precision::Int4,
        }
    }

    /// Peak MACs retired per cycle.
    #[must_use]
    pub fn macs_per_cycle(&self) -> u64 {
        (self.lanes * self.vec_width) as u64
    }

    /// DSP slices this configuration consumes.
    #[must_use]
    pub fn dsp_count(&self) -> u64 {
        (self.macs_per_cycle() as f64 / self.precision.macs_per_dsp()).ceil() as u64
    }
}

/// Per-run MPE activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpeCounters {
    /// Multiply-accumulates actually performed (useful work).
    pub macs: u64,
    /// Cycles the array was issuing (busy time before stalls).
    pub busy_cycles: u64,
    /// Tiles processed.
    pub tiles: u64,
}

/// The MPE: timing + counters.
#[derive(Debug, Clone)]
pub struct Mpe {
    config: MpeConfig,
    counters: MpeCounters,
}

impl Mpe {
    /// Creates an MPE with the given configuration.
    #[must_use]
    pub fn new(config: MpeConfig) -> Self {
        assert!(config.lanes > 0 && config.vec_width > 0, "degenerate MPE");
        Self {
            config,
            counters: MpeCounters::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MpeConfig {
        &self.config
    }

    /// Accumulated counters.
    #[must_use]
    pub fn counters(&self) -> &MpeCounters {
        &self.counters
    }

    /// Cycle cost of a `rows × cols` matvec tile (weight-stationary
    /// streaming: every output row's dot product is folded over `cols`).
    #[must_use]
    pub fn tile_cost(&self, rows: usize, cols: usize) -> Cycles {
        if rows == 0 || cols == 0 {
            return Cycles::ZERO;
        }
        let row_waves = rows.div_ceil(self.config.lanes) as u64;
        let col_steps = cols.div_ceil(self.config.vec_width) as u64;
        Cycles(row_waves * col_steps + self.config.pipeline_depth)
    }

    /// Cycle cost of a `rows × cols` tile whose weights are block-sparse
    /// with the given `density` (fraction of `block`-wide column segments
    /// surviving). A reconfigurable MPE skips pruned blocks entirely, so
    /// compute scales with density; a small per-block index-decode cost is
    /// charged so extreme sparsity does not become free.
    #[must_use]
    pub fn sparse_tile_cost(&self, rows: usize, cols: usize, density: f64, block: usize) -> Cycles {
        assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
        assert!(block >= 1, "block must be >= 1");
        if rows == 0 || cols == 0 {
            return Cycles::ZERO;
        }
        let row_waves = rows.div_ceil(self.config.lanes) as u64;
        let blocks_per_row = cols.div_ceil(block) as u64;
        let live_blocks = (blocks_per_row as f64 * density).ceil() as u64;
        // Each live block streams `block` columns through the vector unit,
        // plus one decode cycle per block for the index.
        let steps_per_block = (block as u64).div_ceil(self.config.vec_width as u64);
        let col_steps = live_blocks * (steps_per_block + 1);
        Cycles(row_waves * col_steps + self.config.pipeline_depth)
    }

    /// Records execution of a tile and returns its cost.
    pub fn run_tile(&mut self, rows: usize, cols: usize) -> Cycles {
        let cost = self.tile_cost(rows, cols);
        self.counters.macs += (rows * cols) as u64;
        self.counters.busy_cycles += cost.0;
        if rows > 0 && cols > 0 {
            self.counters.tiles += 1;
        }
        cost
    }

    /// Fraction of peak MAC throughput achieved over `elapsed` total
    /// cycles (0 when nothing ran).
    #[must_use]
    pub fn utilization(&self, elapsed: Cycles) -> f64 {
        if elapsed == Cycles::ZERO {
            return 0.0;
        }
        let peak = self.config.macs_per_cycle() as f64 * elapsed.0 as f64;
        self.counters.macs as f64 / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_design_point_fits_u280_dsp_budget() {
        let cfg = MpeConfig::u280_fp32();
        assert_eq!(cfg.macs_per_cycle(), 512);
        assert_eq!(cfg.dsp_count(), 2560);
        assert!(cfg.dsp_count() <= 9024);
    }

    #[test]
    fn int8_design_point_fits_u280_dsp_budget() {
        let cfg = MpeConfig::u280_int8();
        assert_eq!(cfg.dsp_count(), 2560);
        assert!(cfg.macs_per_cycle() > MpeConfig::u280_fp32().macs_per_cycle());
    }

    #[test]
    fn tile_cost_exact_small_case() {
        let mpe = Mpe::new(MpeConfig {
            lanes: 4,
            vec_width: 2,
            pipeline_depth: 3,
            precision: Precision::Fp32,
        });
        // rows=8 -> 2 waves; cols=5 -> 3 steps; 2*3 + 3 = 9.
        assert_eq!(mpe.tile_cost(8, 5), Cycles(9));
        assert_eq!(mpe.tile_cost(0, 5), Cycles::ZERO);
        assert_eq!(mpe.tile_cost(8, 0), Cycles::ZERO);
    }

    #[test]
    fn cost_is_monotone_in_shape() {
        let mpe = Mpe::new(MpeConfig::u280_fp32());
        assert!(mpe.tile_cost(128, 512) <= mpe.tile_cost(256, 512));
        assert!(mpe.tile_cost(128, 512) <= mpe.tile_cost(128, 1024));
    }

    #[test]
    fn full_matvec_cost_matches_roofline() {
        // stories15M-ish: 288x288 matvec on the shipped config.
        let mpe = Mpe::new(MpeConfig::u280_fp32());
        let c = mpe.tile_cost(288, 288);
        // ceil(288/64)=5 waves, ceil(288/8)=36 steps -> 180 + 12.
        assert_eq!(c, Cycles(192));
    }

    #[test]
    fn sparse_tile_cost_scales_with_density() {
        let mpe = Mpe::new(MpeConfig::u280_fp32());
        let dense = mpe.tile_cost(64, 512);
        let full = mpe.sparse_tile_cost(64, 512, 1.0, 8);
        let half = mpe.sparse_tile_cost(64, 512, 0.5, 8);
        let tenth = mpe.sparse_tile_cost(64, 512, 0.1, 8);
        // Full density costs slightly more than dense (index decode).
        assert!(full >= dense);
        assert!(half < full);
        assert!(tenth < half);
        // Near-linear scaling in the streaming term.
        assert!(half.0 as f64 / full.0 as f64 > 0.4);
    }

    #[test]
    fn sparse_tile_cost_never_free() {
        let mpe = Mpe::new(MpeConfig::u280_fp32());
        let c = mpe.sparse_tile_cost(64, 512, 0.0, 8);
        assert!(c >= Cycles(mpe.config().pipeline_depth));
        assert_eq!(mpe.sparse_tile_cost(0, 512, 0.5, 8), Cycles::ZERO);
    }

    #[test]
    fn counters_accumulate() {
        let mut mpe = Mpe::new(MpeConfig::u280_fp32());
        mpe.run_tile(64, 64);
        mpe.run_tile(64, 64);
        assert_eq!(mpe.counters().macs, 2 * 64 * 64);
        assert_eq!(mpe.counters().tiles, 2);
        assert!(mpe.counters().busy_cycles > 0);
    }

    #[test]
    fn utilization_bounded() {
        let mut mpe = Mpe::new(MpeConfig::u280_fp32());
        let cost = mpe.run_tile(512, 512);
        let u = mpe.utilization(cost);
        assert!(u > 0.5 && u <= 1.0, "utilization {u}");
        assert_eq!(mpe.utilization(Cycles::ZERO), 0.0);
    }

    #[test]
    fn int8_is_faster_per_tile() {
        let f = Mpe::new(MpeConfig::u280_fp32());
        let q = Mpe::new(MpeConfig::u280_int8());
        assert!(q.tile_cost(768, 288) < f.tile_cost(768, 288));
    }

    #[test]
    fn int4_design_point_fits_u280_dsp_budget() {
        let cfg = MpeConfig::u280_int4();
        assert_eq!(cfg.dsp_count(), 2560);
        assert!(cfg.macs_per_cycle() > MpeConfig::u280_int8().macs_per_cycle());
        let q8 = Mpe::new(MpeConfig::u280_int8());
        let q4 = Mpe::new(MpeConfig::u280_int4());
        assert!(q4.tile_cost(768, 288) <= q8.tile_cost(768, 288));
    }
}
