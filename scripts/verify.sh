#!/usr/bin/env bash
# Full verification gate: tier-1 (build + tests) plus a bench smoke pass.
#
# Everything here runs offline — the workspace has no registry
# dependencies, so a clean checkout verifies with no network at all.
#
# Usage: scripts/verify.sh [--tier1-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: formatting =="
cargo fmt --check

echo "== tier 1: release build =="
# --workspace so the release `speedllm` binary used by the telemetry smoke
# below is rebuilt too (the root package alone excludes the CLI crate).
cargo build --release --workspace

# --workspace is a superset of the tier-1 `cargo test -q` (root package):
# it adds every member crate's unit tests, the testkit self-tests, and
# the repro-binary smoke tests in crates/bench/tests.
echo "== tier 1+ : workspace test suite =="
cargo test -q --workspace

if [[ "${1:-}" == "--tier1-only" ]]; then
    echo "verify OK (tier 1 only)"
    exit 0
fi

# All bench targets live in speedllm-bench (harness = false), so scope the
# run there — default libtest harnesses elsewhere would reject --smoke.
echo "== bench smoke (tiny configs, 3 samples per bench) =="
cargo bench -p speedllm-bench -- --smoke

echo "== serve smoke (continuous batching, byte-identical reports) =="
# The serve layer keeps all timing in virtual ticks, so the same seed must
# render the same bytes, run to run and backend-config to backend-config.
serve_a="$(./target/release/speedllm serve-bench --smoke)"
serve_b="$(./target/release/speedllm serve-bench --smoke)"
if [[ "$serve_a" != "$serve_b" ]]; then
    echo "serve-bench --smoke is not deterministic:" >&2
    diff <(printf '%s\n' "$serve_a") <(printf '%s\n' "$serve_b") >&2 || true
    exit 1
fi
grep -q "requests completed   8" <<<"$serve_a"
serve_cpu="$(./target/release/speedllm serve-bench --smoke --backend cpu)"
grep -q "serve-bench report (cpu backend)" <<<"$serve_cpu"
echo "serve smoke OK: accel + cpu backends deterministic"

echo "== paged-serve smoke (block pool + radix prefix cache, both backends) =="
# Same determinism bar for the paged KV path: the block allocator, radix
# sharing, and preemptive eviction all run in virtual time, so reports
# must be byte-identical run to run.
paged_a="$(./target/release/speedllm serve-bench --smoke --kv paged)"
paged_b="$(./target/release/speedllm serve-bench --smoke --kv paged)"
if [[ "$paged_a" != "$paged_b" ]]; then
    echo "serve-bench --smoke --kv paged is not deterministic:" >&2
    diff <(printf '%s\n' "$paged_a") <(printf '%s\n' "$paged_b") >&2 || true
    exit 1
fi
grep -q "requests completed   8" <<<"$paged_a"
grep -q "peak blocks in use" <<<"$paged_a"
paged_cpu="$(./target/release/speedllm serve-bench --smoke --backend cpu --kv paged --block-size 4 --shared-prefix 8)"
grep -q "requests completed   8" <<<"$paged_cpu"
# With a 2-block shared prefix the radix cache must actually hit.
grep -q "prefix-hit tokens" <<<"$paged_cpu"
if grep -Eq "prefix-hit tokens +0$" <<<"$paged_cpu"; then
    echo "paged cpu smoke: shared prefix never hit the radix cache" >&2
    exit 1
fi
# Recycled-block hygiene + equal-memory ablation, in the release profile
# (debug poisoning off — reuse must be clean on its own merits).
cargo test --release -q -p speedllm --test paged_reuse
echo "paged serve smoke OK: deterministic on accel + cpu, prefix cache hits"

echo "== batched-decode GEMM identity gate (release) =="
# The batched serve hot path must stay bit-identical to the sequential
# per-sequence loop in the profile the benches and serve runs actually
# use (debug asserts off): flat + paged slots, serial + parallel kernels,
# permuted batch order, on both backends.
cargo test --release -q -p speedllm --test batched_decode_props

echo "== unified-batch smoke (mixed prefill+decode ticks, byte-identical reports) =="
# The unified scheduler shares the virtual clock discipline: the same
# seeded bursty workload through mixed token-budget ticks must render
# the same bytes, run to run, on both backends.
uni_a="$(./target/release/speedllm serve-bench --smoke --mode bursty --burst-size 4 --burst-gap 16 --token-budget 8 --prefill-ratio 50)"
uni_b="$(./target/release/speedllm serve-bench --smoke --mode bursty --burst-size 4 --burst-gap 16 --token-budget 8 --prefill-ratio 50)"
if [[ "$uni_a" != "$uni_b" ]]; then
    echo "unified serve-bench smoke is not deterministic:" >&2
    diff <(printf '%s\n' "$uni_a") <(printf '%s\n' "$uni_b") >&2 || true
    exit 1
fi
grep -q "requests completed   8" <<<"$uni_a"
grep -q "token budget 8, prefill ratio 50%" <<<"$uni_a"
uni_cpu="$(./target/release/speedllm serve-bench --smoke --backend cpu --kv paged --prefill-ratio 25)"
grep -q "requests completed   8" <<<"$uni_cpu"
echo "unified-batch smoke OK: deterministic mixed ticks on accel + cpu"

echo "== unified-batch identity gate (release) =="
# The mixed prefill+decode tick must stay bit-identical to the
# sequential prefill-then-decode engine in the release profile (debug
# asserts off): budget × ratio × chunk × flat/paged × serial/parallel
# grids on both backends, plus the mid-tick-finish / exact-fit /
# forced-split / preempt-half-prefilled edges and the pure-decode
# report-byte regression.
cargo test --release -q -p speedllm --test unified_batch_props
cargo test --release -q -p speedllm --test unified_batch_telemetry

echo "== batched GEMM ablation smoke (tok/s + weight bytes/token vs width) =="
gemm_out="$(cargo bench -q -p speedllm-bench --bench ablation_batched_gemm -- --smoke)"
grep -q "batch 8:" <<<"$gemm_out"
# JSONL rows must carry the batch_width meta the repro tooling keys on.
grep -q '"batch_width":"8"' <<<"$gemm_out"
echo "batched GEMM smoke OK: ablation table + batch_width-stamped JSONL rows"

echo "== speculative smoke (draft K ahead, one-pass verify, byte-identical) =="
# Speculation must keep the virtual-clock discipline: same seed, same
# bytes, run to run — including the lifecycle event log, which now
# carries draft_tick/verify_tick lines. Greedy sampling with the `auto`
# draft (a stories260K-shaped trunk at an offset seed) must show nonzero
# acceptance or speculation is not actually engaging.
spec_dir="$(mktemp -d /tmp/speedllm_verify_spec.XXXXXX)"
trap 'rm -rf "$spec_dir"' EXIT
# Report determinism (no export path in the output), then event-log
# determinism as a file-level byte compare.
spec_a="$(./target/release/speedllm serve-bench --smoke --spec-k 4 --sampler argmax)"
spec_b="$(./target/release/speedllm serve-bench --smoke --spec-k 4 --sampler argmax)"
./target/release/speedllm serve-bench --smoke --spec-k 4 --sampler argmax \
    --events-out "$spec_dir/ev_a.jsonl" >/dev/null
./target/release/speedllm serve-bench --smoke --spec-k 4 --sampler argmax \
    --events-out "$spec_dir/ev_b.jsonl" >/dev/null
if [[ "$spec_a" != "$spec_b" ]]; then
    echo "serve-bench --smoke --spec-k 4 is not deterministic:" >&2
    diff <(printf '%s\n' "$spec_a") <(printf '%s\n' "$spec_b") >&2 || true
    exit 1
fi
cmp "$spec_dir/ev_a.jsonl" "$spec_dir/ev_b.jsonl"
grep -q "requests completed   8" <<<"$spec_a"
grep -q "spec rounds" <<<"$spec_a"
if grep -Eq "spec acceptance      0/" <<<"$spec_a"; then
    echo "speculative smoke: greedy acceptance is zero" >&2
    exit 1
fi
grep -q '"ev":"draft_tick"' "$spec_dir/ev_a.jsonl"
grep -q '"ev":"verify_tick"' "$spec_dir/ev_a.jsonl"
# Paged KV + speculation: rollback pops blocks, preemption drops draft
# state; the composition must stay deterministic too.
spec_paged_a="$(./target/release/speedllm serve-bench --smoke --backend cpu --kv paged --spec-k 3 --sampler argmax)"
spec_paged_b="$(./target/release/speedllm serve-bench --smoke --backend cpu --kv paged --spec-k 3 --sampler argmax)"
if [[ "$spec_paged_a" != "$spec_paged_b" ]]; then
    echo "paged speculative smoke is not deterministic" >&2
    exit 1
fi
grep -q "spec rounds" <<<"$spec_paged_a"
# The speculative identity gate in the profile serve runs actually use
# (debug asserts off): stream bit-identity + rollback oracles across
# K x flat/paged x cpu/accel x serial/parallel x greedy/seeded.
cargo test --release -q -p speedllm --test speculative_props
echo "speculative smoke OK: deterministic, nonzero acceptance, events carry draft/verify ticks"

echo "== observability smoke (lifecycle events + tick metrics + analyze) =="
obs_dir="$(mktemp -d /tmp/speedllm_verify_obs.XXXXXX)"
trap 'rm -rf "$spec_dir" "$obs_dir"' EXIT
# Exports must be byte-reproducible: same seed, same bytes, run to run.
./target/release/speedllm serve-bench --smoke \
    --events-out "$obs_dir/ev_a.jsonl" --metrics-out "$obs_dir/ticks_a.csv" >/dev/null
./target/release/speedllm serve-bench --smoke \
    --events-out "$obs_dir/ev_b.jsonl" --metrics-out "$obs_dir/ticks_b.csv" >/dev/null
cmp "$obs_dir/ev_a.jsonl" "$obs_dir/ev_b.jsonl"
cmp "$obs_dir/ticks_a.csv" "$obs_dir/ticks_b.csv"
# The analyzer must ingest the event log back and produce a non-empty
# phase breakdown that accounts for every smoke request.
analyze_out="$(./target/release/speedllm analyze --events "$obs_dir/ev_a.jsonl")"
grep -q "phase breakdown" <<<"$analyze_out"
grep -q "8 requests (8 completed" <<<"$analyze_out"
grep -q "top 5 slowest requests" <<<"$analyze_out"
n_events="$(wc -l < "$obs_dir/ev_a.jsonl")"
n_ticks="$(tail -n +2 "$obs_dir/ticks_a.csv" | wc -l)"
if (( n_events < 8 * 4 )); then
    echo "observability smoke: suspiciously few lifecycle events ($n_events)" >&2
    exit 1
fi
if (( n_ticks < 1 )); then
    echo "observability smoke: tick series is empty" >&2
    exit 1
fi
echo "observability smoke OK: $n_events events + $n_ticks tick samples, byte-stable, analyze reconciles"

echo "== telemetry smoke (instrumented tiny generate -> Chrome trace) =="
trace_file="$(mktemp /tmp/speedllm_verify_trace.XXXXXX.json)"
trap 'rm -rf "$spec_dir" "$obs_dir" "$trace_file"' EXIT
# Capture first, then grep: grep -q closing a live pipe would SIGPIPE the
# binary and trip pipefail.
smoke_out="$(./target/release/speedllm run --preset tiny --steps 8 --trace-out "$trace_file")"
grep -q "telemetry summary" <<<"$smoke_out"
python3 - "$trace_file" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "trace has no complete events"
# One span from each instrumented layer: host per-token work, the engine
# timing pass, and the simulator's cycle timeline (pid 2).
host = {e["name"] for e in spans if e["pid"] == 1}
assert {"prefill_chunk", "decode_token"} <= host, f"host spans missing: {host}"
assert "timing_pass" in host, f"engine spans missing: {host}"
assert any(e["pid"] == 2 for e in spans), "no simulator spans"
print(f"telemetry smoke OK: {len(spans)} spans")
EOF

echo "== cluster smoke (router + replicas, byte-identical, fault-tolerant) =="
cl_dir="$(mktemp -d /tmp/speedllm_verify_cluster.XXXXXX)"
trap 'rm -rf "$spec_dir" "$obs_dir" "$trace_file" "$cl_dir"' EXIT
# Every routing policy must be byte-reproducible: the full stdout
# (cluster report + per-replica reports) AND the merged replica-stamped
# event export must match between double runs. The trailing "wrote ...
# to PATH" line is dropped: it names the (different) output files.
for policy in prefix least-loaded round-robin; do
    a="$(./target/release/speedllm cluster-bench --smoke --replicas 3 --policy "$policy" \
        --events-out "$cl_dir/ev_a.jsonl" | grep -v '^wrote ')"
    b="$(./target/release/speedllm cluster-bench --smoke --replicas 3 --policy "$policy" \
        --events-out "$cl_dir/ev_b.jsonl" | grep -v '^wrote ')"
    if [[ "$a" != "$b" ]]; then
        echo "cluster-bench --policy $policy is not deterministic" >&2
        exit 1
    fi
    cmp "$cl_dir/ev_a.jsonl" "$cl_dir/ev_b.jsonl"
    grep -q '"replica":' "$cl_dir/ev_a.jsonl"
    echo "$a" > "$cl_dir/report_$policy.txt"
done
# Placement policy must never change what gets generated — per-request
# seeded samplers make token streams routing-independent.
rr_digest="$(grep 'token stream digest' "$cl_dir/report_round-robin.txt")"
px_digest="$(grep 'token stream digest' "$cl_dir/report_prefix.txt")"
if [[ "$rr_digest" != "$px_digest" ]]; then
    echo "routing policy changed the token streams: $px_digest vs $rr_digest" >&2
    exit 1
fi
# Fault injection: kill replica 0 mid-run; the router must fail its work
# over and still complete every request with the no-fault digest.
fault_out="$(./target/release/speedllm cluster-bench --smoke --replicas 3 --fault-at 20:0)"
grep -q "requests completed   12" <<<"$fault_out"
failed_over="$(grep -m1 'failed over' <<<"$fault_out" | awk '{print $3}')"
if (( failed_over < 1 )); then
    echo "fault at tick 20 drained nothing (failed over $failed_over)" >&2
    exit 1
fi
fault_digest="$(grep 'token stream digest' <<<"$fault_out")"
if [[ "$fault_digest" != "$px_digest" ]]; then
    echo "failover changed the token streams: $fault_digest vs $px_digest" >&2
    exit 1
fi
# The prefix policy must actually land warm placements on the smoke
# shared-prefix workload.
grep -E 'prefix hit at placement +[1-9]' "$cl_dir/report_prefix.txt" >/dev/null
cargo test --release -q -p speedllm --test router_props
echo "cluster smoke OK: 3 policies deterministic, streams policy- and fault-invariant ($failed_over failed over)"

echo "== quantized serve smoke (fused dequant-GEMM, byte-identical, compressed stream) =="
# The quantized hot path (DESIGN.md §18) must keep the virtual-clock
# discipline: int8 and int4 double runs render the same bytes on both
# backends and both KV layouts.
for quant in int8 int4; do
    for backend in cpu accel; do
        for kvopt in pool paged; do
            q_a="$(./target/release/speedllm serve-bench --smoke --backend "$backend" --kv "$kvopt" --quant "$quant")"
            q_b="$(./target/release/speedllm serve-bench --smoke --backend "$backend" --kv "$kvopt" --quant "$quant")"
            if [[ "$q_a" != "$q_b" ]]; then
                echo "serve-bench --quant $quant ($backend/$kvopt) is not deterministic:" >&2
                diff <(printf '%s\n' "$q_a") <(printf '%s\n' "$q_b") >&2 || true
                exit 1
            fi
            grep -q "quant:    $quant weights" <<<"$q_a"
            grep -q "requests completed   8" <<<"$q_a"
        done
    done
done
# The gemm_weight_bytes telemetry must report the compressed stream:
# int8 strictly under 1/3 of the f32 weight bytes per token, int4
# strictly under int8.
quant_dir="$(mktemp -d /tmp/speedllm_verify_quant.XXXXXX)"
trap 'rm -rf "$spec_dir" "$obs_dir" "$trace_file" "$cl_dir" "$quant_dir"' EXIT
for quant in f32 int8 int4; do
    ./target/release/speedllm serve-bench --smoke --backend cpu --quant "$quant" \
        --trace-out "$quant_dir/trace_$quant.json" > "$quant_dir/out_$quant.txt"
done
python3 - "$quant_dir" <<'EOF'
import sys
def bytes_per_token(path):
    bytes_ = tokens = None
    for line in open(path):
        cols = line.split()
        if cols[:1] == ["cpu.gemm_weight_bytes"]:
            bytes_ = int(cols[1])
        if cols[:1] == ["cpu.gemm_tokens"]:
            tokens = int(cols[1])
    assert bytes_ and tokens, f"{path}: missing cpu.gemm_* counters"
    return bytes_ / tokens
d = sys.argv[1]
f32 = bytes_per_token(f"{d}/out_f32.txt")
i8 = bytes_per_token(f"{d}/out_int8.txt")
i4 = bytes_per_token(f"{d}/out_int4.txt")
assert i8 * 3 < f32, f"int8 stream not under 1/3 of f32: {i8} vs {f32}"
assert i4 < i8, f"int4 stream not under int8: {i4} vs {i8}"
print(f"weight stream/token OK: f32 {f32:.0f} B, int8 {i8:.0f} B ({f32/i8:.2f}x), int4 {i4:.0f} B ({f32/i4:.2f}x)")
EOF
# Perplexity-delta gate on stories15M: quantized CPU engines must track
# the fp32 reference (eval exits nonzero past the bound).
./target/release/speedllm eval --preset stories15m --tokens 24 --engines cpu \
    --gate-int8 0.02 --gate-int4 0.10 | tail -2
# The quantized identity gates in the profile serve runs actually use
# (debug asserts off): kernel bit-identity, round-trip bounds, pack/unpack
# exactness, and the serve-bench double-run corners.
cargo test --release -q -p speedllm --test quant_props
cargo test --release -q -p speedllm-cli --test serve_bench quant
echo "== quant ablation smoke (tok/s + weight MB/token, quant-stamped JSONL) =="
quant_bench="$(cargo bench -q -p speedllm-bench --bench ablation_quant -- --smoke)"
grep -q "int4 batch 8:" <<<"$quant_bench"
grep -q '"quant":"int8"' <<<"$quant_bench"
echo "quantized serve smoke OK: int8/int4 deterministic on both backends, stream compressed, ppl gated"

echo "verify OK"
