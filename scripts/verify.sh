#!/usr/bin/env bash
# Full verification gate: tier-1 (build + tests) plus a bench smoke pass.
#
# Everything here runs offline — the workspace has no registry
# dependencies, so a clean checkout verifies with no network at all.
#
# Usage: scripts/verify.sh [--tier1-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: release build =="
cargo build --release

# --workspace is a superset of the tier-1 `cargo test -q` (root package):
# it adds every member crate's unit tests, the testkit self-tests, and
# the repro-binary smoke tests in crates/bench/tests.
echo "== tier 1+ : workspace test suite =="
cargo test -q --workspace

if [[ "${1:-}" == "--tier1-only" ]]; then
    echo "verify OK (tier 1 only)"
    exit 0
fi

# All bench targets live in speedllm-bench (harness = false), so scope the
# run there — default libtest harnesses elsewhere would reject --smoke.
echo "== bench smoke (tiny configs, 3 samples per bench) =="
cargo bench -p speedllm-bench -- --smoke

echo "verify OK"
