//! Sparsity / quantization quality-vs-cost study: prunes and quantizes a
//! model's layers, scores perplexity degradation with the evaluation
//! module, and pairs it with the simulated device cost — concretizing the
//! paper's §1 argument that FPGAs can turn compression into real gains.

use speedllm::accel::report::Table;
use speedllm::fpga::hbm::{Hbm, HbmConfig};
use speedllm::fpga::mpe::{Mpe, MpeConfig};
use speedllm::llama::config::ModelConfig;
use speedllm::llama::eval::evaluate_reference;
use speedllm::llama::forward::Transformer;
use speedllm::llama::sparse::BlockSparseMatrix;
use speedllm::llama::weights::TransformerWeights;

const BLOCK: usize = 8;

/// Prunes every matmul weight of the model to the target block sparsity.
fn pruned_model(weights: &TransformerWeights, sparsity: f32) -> TransformerWeights {
    let c = weights.config;
    let mut out = weights.clone();
    let prune = |w: &[f32], rows: usize, cols: usize| {
        BlockSparseMatrix::prune(w, rows, cols, BLOCK, sparsity).to_dense()
    };
    for l in &mut out.layers {
        l.wq = prune(&l.wq, c.dim, c.dim);
        l.wk = prune(&l.wk, c.kv_dim(), c.dim);
        l.wv = prune(&l.wv, c.kv_dim(), c.dim);
        l.wo = prune(&l.wo, c.dim, c.dim);
        l.w1 = prune(&l.w1, c.hidden_dim, c.dim);
        l.w3 = prune(&l.w3, c.hidden_dim, c.dim);
        l.w2 = prune(&l.w2, c.dim, c.hidden_dim);
    }
    out
}

fn main() {
    let cfg = ModelConfig::stories260k();
    println!("sparsity study on {cfg}\n");
    let weights = TransformerWeights::synthetic(cfg, 42);
    let tokens: Vec<u32> = (0..64)
        .map(|i| (i * 31 + 7) % cfg.vocab_size as u32)
        .collect();

    // Device-side cost per FFN matvec at each density.
    let mpe = Mpe::new(MpeConfig::u280_fp32());
    let hbm = Hbm::new(HbmConfig::u280());
    let (rows, cols) = (cfg.hidden_dim, cfg.dim);

    let base = evaluate_reference(&mut Transformer::new(weights.clone()), &tokens);
    let mut table = Table::new(&[
        "sparsity",
        "perplexity",
        "ppl increase",
        "matvec cycles",
        "matvec speedup",
        "weight bytes",
    ]);
    let dense_cycles = {
        let read = hbm.transfer_cost((rows * cols * 4) as u64, 24);
        read.max(mpe.tile_cost(rows, cols))
    };
    for sparsity in [0.0f32, 0.25, 0.5, 0.75] {
        let model = pruned_model(&weights, sparsity);
        let r = evaluate_reference(&mut Transformer::new(model), &tokens);
        let density = 1.0 - sparsity as f64;
        let sparse = BlockSparseMatrix::prune(&weights.layers[0].w1, rows, cols, BLOCK, sparsity);
        let read = hbm.transfer_cost(sparse.bytes(), 24);
        let compute = mpe.sparse_tile_cost(rows, cols, density, BLOCK);
        let cycles = read.max(compute);
        table.row(vec![
            format!("{:.0}%", sparsity * 100.0),
            format!("{:.2}", r.perplexity()),
            format!(
                "{:+.1}%",
                100.0 * (r.perplexity() / base.perplexity() - 1.0)
            ),
            format!("{}", cycles.0),
            format!("{:.2}x", dense_cycles.0 as f64 / cycles.0 as f64),
            format!("{}", sparse.bytes()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "On an untrained synthetic model perplexity stays near the vocabulary\n\
         size regardless of pruning (it is already maximal-entropy); on a real\n\
         trained checkpoint the 'ppl increase' column becomes the accuracy\n\
         cost that the matvec speedup buys. The device-side columns hold for\n\
         either: a reconfigurable MPE converts block sparsity into cycles."
    );
}
