//! The paper's code-completion motivation: a prefill-heavy workload (long
//! prompt, short completion). Shows the prefill/decode split on the
//! accelerator and compares against the parallel CPU reference
//! implementation running the same model.

use std::time::Instant;

use speedllm::accel::report::{fmt_seconds, Table};
use speedllm::llama::forward::{MatVecStrategy, Transformer};
use speedllm::llama::generate::{generate, GenerateOptions};
use speedllm::llama::parallel::recommended_threads;
use speedllm::llama::sampler::Sampler;
use speedllm::prelude::*;

fn long_prompt() -> String {
    // A long context the model must ingest before completing (stand-in for
    // a source file preceding the cursor).
    let mut p = String::from("The story so far: ");
    for i in 0..18 {
        p.push_str(match i % 6 {
            0 => "Tim went to the park. ",
            1 => "Lily saw a big red ball. ",
            2 => "The dog ran to the tree. ",
            3 => "Mom said it was time to go home. ",
            4 => "They all played together. ",
            _ => "Then the sun came out. ",
        });
    }
    p.push_str("And then");
    p
}

fn main() {
    let cfg = ModelConfig::stories15m();
    let prompt = long_prompt();
    let gen_tokens = 24;
    println!("code-completion-style workload on {cfg}");

    // Accelerator (full design).
    let system = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).expect("build");
    println!(
        "prompt: {} tokens, completion: {gen_tokens} tokens\n",
        system.tokenizer().encode(&prompt, true, false).len()
    );

    let mut table = Table::new(&["engine", "prefill", "decode", "total", "decode tok/s"]);

    let mut session = system.session(SamplerKind::Argmax, 0);
    let r = session
        .generate(&prompt, gen_tokens)
        .expect("accelerated run");
    table.row(vec![
        "SpeedLLM / U280 (sim)".into(),
        fmt_seconds(r.clock.to_seconds(r.prefill_cycles)),
        fmt_seconds(r.clock.to_seconds(r.decode_cycles)),
        fmt_seconds(r.total_latency_s()),
        format!("{:.0}", r.decode_tokens_per_s()),
    ]);

    // Chunked prefill (extension beyond the paper): weight streams are
    // amortized over 16-token chunks, collapsing the prefill stage.
    let mut chunked_system =
        AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).expect("build chunked");
    chunked_system.set_prefill_chunk(16);
    let mut chunked = chunked_system.session(SamplerKind::Argmax, 0);
    let rc = chunked.generate(&prompt, gen_tokens).expect("chunked run");
    assert_eq!(rc.output.generated_tokens, r.output.generated_tokens);
    table.row(vec![
        "SpeedLLM + chunked prefill".into(),
        fmt_seconds(rc.clock.to_seconds(rc.prefill_cycles)),
        fmt_seconds(rc.clock.to_seconds(rc.decode_cycles)),
        fmt_seconds(rc.total_latency_s()),
        format!("{:.0}", rc.decode_tokens_per_s()),
    ]);

    // CPU reference: serial and parallel (measured wall-clock on this host).
    for (name, strategy) in [
        ("CPU reference (serial)", MatVecStrategy::Serial),
        (
            "CPU reference (threads)",
            MatVecStrategy::Parallel {
                threads: recommended_threads(),
            },
        ),
    ] {
        let mut model = Transformer::new((**system.weights()).clone());
        model.set_strategy(strategy);
        let mut sampler = Sampler::argmax();
        let start = Instant::now();
        let out = generate(
            &mut model,
            system.tokenizer(),
            &mut sampler,
            &prompt,
            GenerateOptions {
                max_new_tokens: gen_tokens,
                stop_at_eos: true,
            },
        );
        let _ = start.elapsed();
        table.row(vec![
            name.into(),
            fmt_seconds(out.prefill_time.as_secs_f64()),
            fmt_seconds(out.decode_time.as_secs_f64()),
            fmt_seconds(out.total_latency().as_secs_f64()),
            format!("{:.0}", out.decode_tokens_per_sec()),
        ]);
    }
    println!("{}", table.render());
    println!("completion: {:?}", r.output.text);
    println!(
        "\nnote: accelerator rows are simulated device time; CPU rows are\n\
         wall-clock on this machine — the comparison shows the prefill/decode\n\
         split, not a hardware claim."
    );
}
