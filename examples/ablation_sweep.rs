//! Sweeps all 2³ corners of the optimization cube (data-stream parallelism
//! × memory reuse × operator fusion) and prints latency, energy, traffic,
//! and utilization per corner — the full decomposition behind Fig. 2.

use speedllm::accel::report::{fmt_bytes, fmt_joules, Table};
use speedllm::prelude::*;

fn main() {
    let cfg = ModelConfig::stories15m();
    let prompt = "One day a little girl named Lily went to the park.";
    let gen = 48;
    println!("optimization-cube sweep on {cfg}");
    println!(
        "workload: {gen} new tokens; names: P=stream-parallel R=reuse F=fusion (capital = on)\n"
    );

    let mut table = Table::new(&[
        "variant",
        "latency",
        "tok/s",
        "tok/J",
        "energy",
        "HBM read",
        "HBM write",
        "launches",
        "stalls",
    ]);
    let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
    for (name, opt) in OptConfig::all_corners() {
        let system = AcceleratedLlm::synthetic(cfg, 42, opt).expect("build");
        let mut session = system.session(SamplerKind::Argmax, 0);
        let r = session.generate(prompt, gen).expect("run");
        rows.push((
            r.total_latency_s(),
            vec![
                name,
                format!("{:.1} ms", r.total_latency_s() * 1e3),
                format!("{:.0}", r.decode_tokens_per_s()),
                format!("{:.0}", r.tokens_per_joule()),
                fmt_joules(r.energy.total_j()),
                fmt_bytes(r.stats.hbm.read_bytes),
                fmt_bytes(r.stats.hbm.write_bytes),
                format!("{}", r.stats.kernel_launches),
                format!("{}", r.stats.alloc_stalls),
            ],
        ));
    }
    // Fastest first.
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (_, row) in rows {
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "Each optimization attacks a different bottleneck: P overlaps\n\
         read/compute/write and widens DMA striping, R keeps activations\n\
         on-chip (no allocation stalls, no HBM round-trips), F removes\n\
         kernel launches and intermediate materialization."
    );
}
