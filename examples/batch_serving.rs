//! Batched serving study (extension beyond the paper): many independent
//! chat sessions decode in lock-step on one accelerator, sharing every
//! weight stream. Aggregate throughput grows with batch size until the MPE
//! becomes the bottleneck — the classic serving curve, produced entirely by
//! the device model.

use speedllm::accel::engine::Engine;
use speedllm::accel::report::Table;
use speedllm::prelude::*;

fn main() {
    let cfg = ModelConfig::stories15m();
    println!("batched decode on {cfg}\n");

    let weights = std::sync::Arc::new(TransformerWeights::synthetic(cfg, 42));
    let decode_steps = 8;
    for (mode, opt) in [
        ("fp32 MPE", OptConfig::full()),
        ("int8 MPE", OptConfig::full_int8()),
    ] {
        println!("--- {mode} ---");
        let mut engine = Engine::new(std::sync::Arc::clone(&weights), opt).expect("build engine");
        let clock = engine.power_model().clock;

        let mut table = Table::new(&[
            "batch",
            "cycles/step",
            "latency/token",
            "aggregate tok/s",
            "speedup",
            "HBM read/step",
        ]);
        let mut base_tps = 0.0f64;
        for batch in [1usize, 2, 4, 8, 16, 32] {
            let mut seqs: Vec<_> = (0..batch).map(|_| engine.new_sequence()).collect();
            // Warm each sequence with a couple of context tokens.
            for (i, seq) in seqs.iter_mut().enumerate() {
                for t in 0..2u32 {
                    let mut solo = [&mut *seq];
                    engine.decode_batch(&mut solo, &[(i as u32 + t) % 100 + 1]);
                }
            }
            let mut cycles = 0u64;
            let mut read = 0u64;
            for step in 0..decode_steps {
                let tokens: Vec<u32> = (0..batch).map(|i| ((i + step) % 200) as u32 + 1).collect();
                let mut refs: Vec<&mut _> = seqs.iter_mut().collect();
                let (_, r) = engine.decode_batch(&mut refs, &tokens);
                cycles += r.cycles.0;
                read += r.stats.hbm.read_bytes;
            }
            let secs = clock.to_seconds(speedllm::fpga::cycles::Cycles(cycles));
            let tps = (batch * decode_steps) as f64 / secs;
            if batch == 1 {
                base_tps = tps;
            }
            table.row(vec![
                batch.to_string(),
                format!("{}", cycles / decode_steps as u64),
                format!(
                    "{:.0} us",
                    clock.to_micros(speedllm::fpga::cycles::Cycles(cycles / decode_steps as u64))
                ),
                format!("{tps:.0}"),
                format!("{:.2}x", tps / base_tps),
                format!(
                    "{:.1} MiB",
                    read as f64 / decode_steps as f64 / (1024.0 * 1024.0)
                ),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "Weight streams are shared across the batch, so aggregate throughput\n\
         scales until compute binds: the fp32 array saturates almost\n\
         immediately, while the int8 design point (10x the MACs/cycle and a\n\
         4x lighter weight stream) keeps scaling to much larger batches —\n\
         the mixed-precision headroom the paper attributes to FPGAs."
    );
}
