//! Quickstart: build a (synthetic) stories15M model, run it on the full
//! SpeedLLM accelerator, and print the generated story plus the paper's
//! metrics.
//!
//! To use a real llama2.c checkpoint instead, pass paths:
//!
//! ```text
//! cargo run --release --example quickstart -- stories15M.bin tokenizer.bin
//! ```

use speedllm::accel::report::{fmt_bytes, fmt_joules, fmt_seconds};
use speedllm::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let system = if args.len() >= 3 {
        // Real checkpoint + tokenizer from disk (llama2.c formats).
        let weights = TransformerWeights::load(std::path::Path::new(&args[1]))
            .expect("failed to load checkpoint");
        let tokenizer = Tokenizer::load(std::path::Path::new(&args[2]), weights.config.vocab_size)
            .expect("failed to load tokenizer");
        println!("loaded checkpoint: {}", weights.config);
        AcceleratedLlm::new(weights, tokenizer, OptConfig::full()).expect("build accelerator")
    } else {
        let cfg = ModelConfig::stories15m();
        println!("no checkpoint given; synthesizing a {cfg} model (seeded)");
        AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).expect("build accelerator")
    };

    let prompt = "Once upon a time there was a little dog named Tim.";
    println!("\nprompt: {prompt:?}");
    let mut session = system.session(
        SamplerKind::TopP {
            temperature: 0.9,
            p: 0.9,
        },
        7,
    );
    let report = session.generate(prompt, 64).expect("generation");

    println!(
        "generated ({} tokens):",
        report.output.generated_tokens.len()
    );
    println!("  {:?}\n", report.output.text);

    println!("--- SpeedLLM inference report ---");
    println!(
        "total latency:     {}",
        fmt_seconds(report.total_latency_s())
    );
    println!(
        "prefill / decode:  {} / {}",
        fmt_seconds(report.clock.to_seconds(report.prefill_cycles)),
        fmt_seconds(report.clock.to_seconds(report.decode_cycles)),
    );
    println!(
        "decode throughput: {:.0} tokens/s",
        report.decode_tokens_per_s()
    );
    println!("energy:            {}", fmt_joules(report.energy.total_j()));
    println!(
        "efficiency:        {:.0} tokens/J",
        report.tokens_per_joule()
    );
    println!(
        "avg power:         {:.1} W (incremental)",
        report.avg_power_w()
    );
    println!(
        "HBM traffic:       {} read, {} written",
        fmt_bytes(report.stats.hbm.read_bytes),
        fmt_bytes(report.stats.hbm.write_bytes),
    );
    println!(
        "device activity:   {} MACs, {} kernel launches",
        report.stats.mpe.macs, report.stats.kernel_launches,
    );
}
