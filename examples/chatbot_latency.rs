//! The paper's real-time-chat motivation: multi-turn short exchanges where
//! *per-token latency* is what the user feels. Runs the same conversation
//! on all four Fig-2 variants and prints per-token latency percentiles.

use speedllm::accel::report::Table;
use speedllm::prelude::*;

const TURNS: &[&str] = &[
    "Hello! How are you today?",
    "Can you tell me a short story about a cat?",
    "What happened to the cat at the end?",
    "Thank you, that was a nice story!",
];

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let cfg = ModelConfig::stories15m();
    println!(
        "chatbot workload on {cfg}\n{} turns, 24 new tokens per turn\n",
        TURNS.len()
    );

    let mut table = Table::new(&[
        "variant",
        "p50 token lat",
        "p99 token lat",
        "turn latency",
        "tok/s",
    ]);
    for (name, opt) in OptConfig::paper_variants() {
        let system = AcceleratedLlm::synthetic(cfg, 42, opt).expect("build");
        let mut session = system.session(SamplerKind::Argmax, 0);
        let mut token_lats_us: Vec<f64> = Vec::new();
        let mut turn_latency_s = 0.0;
        let mut total_tokens = 0usize;
        let mut total_decode_s = 0.0;
        for turn in TURNS {
            // Multi-turn: the KV cache persists, so each turn only
            // prefills its own text.
            let r = session.append_generate(turn, 24).expect("turn");
            turn_latency_s += r.total_latency_s();
            total_tokens += r.output.generated_tokens.len();
            total_decode_s += r.clock.to_seconds(r.decode_cycles);
            for c in &r.per_token_cycles {
                token_lats_us.push(r.clock.to_micros(*c));
            }
        }
        token_lats_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        table.row(vec![
            name.into(),
            format!("{:.0} us", percentile(&token_lats_us, 0.50)),
            format!("{:.0} us", percentile(&token_lats_us, 0.99)),
            format!("{:.1} ms", turn_latency_s * 1e3 / TURNS.len() as f64),
            format!("{:.0}", total_tokens as f64 / total_decode_s),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The full design keeps p99 per-token latency low enough for\n\
         real-time chat; the unoptimized accelerator is ~5x slower per token."
    );
}
