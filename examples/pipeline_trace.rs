//! Renders an ASCII Gantt chart of one decode step's device timeline —
//! visual proof that the streamed design overlaps DMA reads, MPE/SFU
//! compute, and write-back, while the sequential baseline staircases.

use speedllm::prelude::*;

fn trace_step(opt: OptConfig, label: &str) {
    let cfg = ModelConfig::stories260k();
    let system = AcceleratedLlm::synthetic(cfg, 42, opt).expect("build");
    let mut session = system.session(SamplerKind::Argmax, 0);
    // Warm two positions so attention has context, then trace step 3.
    session.step(5, 0);
    session.step(6, 1);
    session.engine_mut().capture_trace(4096);
    let r = session.step(7, 2);
    let trace = session.engine_mut().take_trace().expect("trace");
    println!(
        "=== {label} ({}) — one decode step, {} cycles ===",
        opt.short_name(),
        r.cycles.0
    );
    print!("{}", trace.render_gantt(100));
    println!();
}

fn main() {
    println!("device timeline of one stories260K decode step\n");
    trace_step(OptConfig::full(), "streamed (SpeedLLM)");
    trace_step(OptConfig::unoptimized(), "sequential (unoptimized)");
    println!(
        "In the streamed run the DMA-RD row is nearly solid (reads prefetch\n\
         ahead of compute); in the sequential run every resource idles while\n\
         the others work, and the HOST row shows per-kernel launch gaps."
    );
}
