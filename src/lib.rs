//! # SpeedLLM
//!
//! A from-scratch Rust reproduction of *"SpeedLLM: An FPGA Co-design of
//! Large Language Model Inference Accelerator"* (HPDC '25): a TinyLlama
//! (llama2.c) inference accelerator for the Xilinx Alveo U280, rebuilt as a
//! cycle-approximate simulator with the paper's three co-design
//! optimizations — data-stream pipelining, memory-allocation reuse, and
//! Llama-2 operator fusion.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`llama`] — the Llama-2 model substrate (tokenizer, weights, reference
//!   forward pass, sampling, quantization).
//! * [`fpga`] — the U280 device model (HBM, on-chip memory, MPE, SFU,
//!   resources, power).
//! * [`accel`] — the SpeedLLM accelerator itself (IR, fusion, memory
//!   planner, streamed pipeline, engine, host runtime).
//! * [`gpu`] — the analytical GPU roofline used in the cost study.
//! * [`pagedkv`] — the block-granular paged KV-cache (free-list allocator,
//!   block tables, radix-tree prefix sharing) behind `--kv paged` serving.
//! * [`serve`] — the continuous-batching serve layer over either backend.
//! * [`router`] — the cluster front-end: N serve replicas behind one
//!   queue with prefix-aware routing, load-aware admission, and
//!   deterministic failover.
//!
//! ## Quickstart
//!
//! ```
//! use speedllm::prelude::*;
//!
//! // Build a (synthetic) stories15M-architecture model and run it on the
//! // fully-optimized accelerator.
//! let cfg = ModelConfig::test_tiny();
//! let system = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).unwrap();
//! let mut session = system.session(SamplerKind::Argmax, 7);
//! let report = session.generate("once upon a time", 16).unwrap();
//! assert!(report.output.generated_tokens.len() <= 16);
//! ```

pub use speedllm_accel as accel;
pub use speedllm_fpga_sim as fpga;
pub use speedllm_gpu_model as gpu;
pub use speedllm_llama as llama;
pub use speedllm_pagedkv as pagedkv;
pub use speedllm_router as router;
pub use speedllm_serve as serve;
pub use speedllm_telemetry as telemetry;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use speedllm_accel::engine::{AccelConfig, Engine, SequenceState};
    pub use speedllm_accel::opt::OptConfig;
    pub use speedllm_accel::runtime::{AcceleratedLlm, InferenceReport, Session};
    pub use speedllm_llama::config::ModelConfig;
    pub use speedllm_llama::sampler::{Sampler, SamplerKind};
    pub use speedllm_llama::tokenizer::Tokenizer;
    pub use speedllm_llama::weights::TransformerWeights;
    pub use speedllm_pagedkv::{BlockAllocator, BlockConfig, BlockTable, PagedKvArena, RadixIndex};
    pub use speedllm_serve::{
        AccelBackend, Backend, CpuBackend, ServeConfig, ServeEngine, ServeReport,
    };
}
