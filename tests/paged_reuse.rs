//! Paged-pool hygiene and the prefix-cache ablation, end to end.
//!
//! Wave after wave of traffic through a tight paged arena must recycle
//! physical blocks constantly; a recycled block has to be
//! indistinguishable from a fresh one, so every wave reproduces the
//! first wave's streams token for token. The second test is the
//! equal-memory ablation behind `ablation_prefix_cache`: on a
//! shared-prefix closed-loop workload, the paged engine with radix
//! sharing must beat the flat slot pool on both time-to-first-token and
//! admitted concurrency.

use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::rng::Xoshiro256;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::tokenizer::TOKEN_BOS;
use speedllm::llama::weights::TransformerWeights;
use speedllm::pagedkv::BlockConfig;
use speedllm::serve::{
    ArrivalMode, Completion, CpuBackend, LoadGen, LoadGenConfig, Request, ServeConfig, ServeEngine,
};

fn model() -> Transformer {
    Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42))
}

fn serve_cfg(slots: usize) -> ServeConfig {
    ServeConfig {
        slots,
        max_batch: 8,
        prefill_chunk: 4,
        queue_cap: 64,
        unified: None,
    }
}

/// Deterministic wave of requests: a couple of distinct prompt families
/// so the radix tree holds several chains at once.
fn wave(seed: u64, n: usize) -> Vec<Request> {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let plen = 3 + rng.below(6) as usize;
            let mut prompt = vec![TOKEN_BOS];
            for _ in 1..plen {
                prompt.push(3 + rng.below(cfg.vocab_size as u64 - 3) as u32);
            }
            Request {
                id,
                prompt,
                max_new_tokens: 4 + rng.below(5) as usize,
                stop_at_eos: false,
                sampler: SamplerKind::Temperature(0.8),
                seed: rng.next_u64(),
                arrival: 0,
            }
        })
        .collect()
}

fn drain(engine: &mut ServeEngine<CpuBackend>) -> Vec<Completion> {
    let mut out = Vec::new();
    while !engine.is_idle() {
        out.extend(engine.step());
    }
    out.sort_by_key(|c| c.id);
    out
}

/// A physical block that went through alloc → use → release → realloc
/// must behave exactly like one fresh out of the arena: waves 2..N of
/// identical traffic through a tight paged pool (blocks recycle every
/// wave, the radix cache is hit and evicted along the way) reproduce
/// wave 1 byte for byte. Runs under `--release` in `scripts/verify.sh`
/// so the check also covers the profile where debug poisoning is off.
#[test]
fn recycled_blocks_are_indistinguishable_from_fresh() {
    let cfg = ModelConfig::test_tiny();
    let bs = 4;
    // Tight: two sequences' worth of blocks for eight requests per wave.
    let n_blocks = 2 * cfg.seq_len.div_ceil(bs);
    let mut engine = ServeEngine::new(
        CpuBackend::new_paged(
            model(),
            BlockConfig {
                block_size: bs,
                n_blocks,
            },
        ),
        serve_cfg(n_blocks),
    );

    let reqs = wave(17, 8);
    for r in reqs.iter().cloned() {
        engine.submit(r).unwrap();
    }
    let first = drain(&mut engine);
    assert_eq!(first.len(), 8);
    assert!(engine.all_slots_free());
    assert_eq!(engine.blocks_in_use(), engine.blocks_cached());

    for round in 2..=4 {
        for r in reqs.iter().cloned() {
            engine.submit(r).unwrap();
        }
        let again = drain(&mut engine);
        assert!(engine.all_slots_free());
        engine.check_paged_invariants().unwrap();
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(
                a.tokens, b.tokens,
                "wave {round}: recycled blocks changed request {}",
                a.id
            );
        }
    }
    // The tight budget forced real churn: blocks were recycled, not idle.
    assert!(
        engine.stats().peak_blocks_in_use as usize == n_blocks,
        "arena never filled — the waves exercised no recycling"
    );
}

/// Equal-memory ablation: same model, same total KV bytes, same
/// closed-loop shared-prefix workload. The flat slot pool spends
/// `seq_len` tokens of KV per admitted request no matter how short it
/// is; the paged engine shares the common prefix through the radix tree
/// and allocates the rest on demand, so it both starts requests earlier
/// (lower mean TTFT) and holds more of them in flight.
#[test]
fn prefix_cache_improves_ttft_and_concurrency_at_equal_memory() {
    let cfg = ModelConfig::test_tiny();
    let flat_slots = 2;
    let bs = 4;
    let n_blocks = flat_slots * cfg.seq_len.div_ceil(bs); // identical KV budget

    let traffic_cfg = LoadGenConfig {
        n_requests: 12,
        mode: ArrivalMode::Closed { concurrency: 6 },
        prompt_len: (10, 12),
        shared_prefix_len: 8, // two full blocks of common prefix
        max_new_tokens: (2, 6),
        sampler: SamplerKind::Temperature(0.8),
        stop_at_eos: true,
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        seed: 7,
    };

    let mut flat = ServeEngine::new(CpuBackend::new(model()), serve_cfg(flat_slots));
    let flat_done = flat.run_with_source(&mut LoadGen::new(&traffic_cfg));

    let mut paged = ServeEngine::new(
        CpuBackend::new_paged(
            model(),
            BlockConfig {
                block_size: bs,
                n_blocks,
            },
        ),
        serve_cfg(n_blocks),
    );
    let paged_done = paged.run_with_source(&mut LoadGen::new(&traffic_cfg));

    assert_eq!(flat_done.len(), 12);
    assert_eq!(paged_done.len(), 12);
    // Same requests, same streams: the ablation changes scheduling, not
    // tokens.
    let mut f = flat_done.clone();
    let mut p = paged_done.clone();
    f.sort_by_key(|c| c.id);
    p.sort_by_key(|c| c.id);
    for (a, b) in f.iter().zip(&p) {
        assert_eq!(
            a.tokens, b.tokens,
            "request {} diverged across backends",
            a.id
        );
    }

    let mean_ttft = |done: &[Completion]| {
        let (sum, n) = done
            .iter()
            .filter_map(Completion::ttft)
            .fold((0u64, 0u64), |(s, n), t| (s + t, n + 1));
        sum as f64 / n as f64
    };
    let flat_ttft = mean_ttft(&flat_done);
    let paged_ttft = mean_ttft(&paged_done);
    let flat_active = flat.stats().max_active_observed;
    let paged_active = paged.stats().max_active_observed;

    assert!(
        paged.stats().prefix_hit_tokens > 0,
        "shared prefix never hit the radix cache"
    );
    assert!(
        paged_ttft < flat_ttft,
        "paged mean TTFT {paged_ttft:.1} not below flat {flat_ttft:.1}"
    );
    assert!(
        paged_active > flat_active,
        "paged concurrency {paged_active} not above flat {flat_active} at equal memory"
    );
}
