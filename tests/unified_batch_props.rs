//! Property suite for the unified mixed prefill+decode scheduler
//! (DESIGN.md §14): across token budgets, prefill ratios, chunk sizes,
//! flat and paged KV, serial and parallel kernels, and both backends,
//! the unified engine must emit **bit-identical** token streams — exact
//! `assert_eq`, no tolerance — to the phase-serialized engine, which PR 5
//! already pinned to the single-tenant oracle. On the CPU backend the
//! virtual clock must also agree exactly, because a tick costs the token
//! rows it actually carries and both schedulers forward the same rows.
//!
//! Deterministic edge cases ride along: a sequence finishing mid-tick
//! while another is mid-prefill, a chunk exactly filling the budget, a
//! budget smaller than one chunk (forced split), preemption of a
//! half-prefilled sequence under paged block pressure, per-tick cost
//! accounting, a byte-level report regression for pure-decode workloads,
//! and the headline claim: lower TTFT p99 on the accelerator under a
//! bursty workload at equal KV budget.

use speedllm_testkit::prelude::*;

use std::sync::Arc;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::{MatVecStrategy, Transformer};
use speedllm::llama::rng::Xoshiro256;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::tokenizer::TOKEN_BOS;
use speedllm::llama::weights::TransformerWeights;
use speedllm::pagedkv::BlockConfig;
use speedllm::serve::{
    AccelBackend, ArrivalMode, Backend, Completion, CpuBackend, LoadGen, LoadGenConfig, Request,
    ServeConfig, ServeEngine, ServeReport, UnifiedConfig,
};

/// Enough blocks that no paged run ever preempts: sharing and allocation
/// still exercise the paged path, but both engines forward the same rows.
const AMPLE_BLOCKS: BlockConfig = BlockConfig {
    block_size: 4,
    n_blocks: 64,
};

fn weights() -> TransformerWeights {
    TransformerWeights::synthetic(ModelConfig::test_tiny(), 42)
}

fn serve_cfg(slots: usize, chunk: usize, unified: Option<UnifiedConfig>) -> ServeConfig {
    ServeConfig {
        slots,
        max_batch: 8,
        prefill_chunk: chunk,
        queue_cap: 64,
        unified,
    }
}

fn cpu_engine(
    slots: usize,
    chunk: usize,
    paged: bool,
    parallel: bool,
    unified: Option<UnifiedConfig>,
) -> ServeEngine<CpuBackend> {
    let mut model = Transformer::new(weights());
    model.set_strategy(if parallel {
        MatVecStrategy::Parallel { threads: 3 }
    } else {
        MatVecStrategy::Serial
    });
    let backend = if paged {
        CpuBackend::new_paged(model, AMPLE_BLOCKS)
    } else {
        CpuBackend::new(model)
    };
    ServeEngine::new(backend, serve_cfg(slots, chunk, unified))
}

fn cpu_paged_engine(
    slots: usize,
    chunk: usize,
    blocks: BlockConfig,
    unified: Option<UnifiedConfig>,
) -> ServeEngine<CpuBackend> {
    let model = Transformer::new(weights());
    ServeEngine::new(
        CpuBackend::new_paged(model, blocks),
        serve_cfg(slots, chunk, unified),
    )
}

fn accel_engine(
    slots: usize,
    chunk: usize,
    paged: bool,
    unified: Option<UnifiedConfig>,
) -> ServeEngine<AccelBackend> {
    let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
    let backend = if paged {
        AccelBackend::new_paged(engine, AMPLE_BLOCKS)
    } else {
        AccelBackend::new(engine)
    };
    ServeEngine::new(backend, serve_cfg(slots, chunk, unified))
}

fn unified(budget: usize, pct: u32) -> Option<UnifiedConfig> {
    Some(UnifiedConfig {
        token_budget: budget,
        prefill_pct: pct,
    })
}

/// A random but valid request stream for the tiny model: prompt lengths
/// 1..=10 (BOS first, long enough to need several chunks), budgets 0..=6
/// (zero budget included on purpose), per-request seeded samplers.
fn random_requests(seed: u64, n: usize) -> Vec<Request> {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let plen = 1 + rng.below(10) as usize;
            let mut prompt = vec![TOKEN_BOS];
            for _ in 1..plen {
                prompt.push(3 + rng.below(cfg.vocab_size as u64 - 3) as u32);
            }
            Request {
                id,
                prompt,
                max_new_tokens: rng.below(7) as usize,
                stop_at_eos: true,
                sampler: SamplerKind::Temperature(0.8),
                seed: rng.next_u64(),
                arrival: 0,
            }
        })
        .collect()
}

fn req(id: u64, prompt: Vec<u32>, max_new: usize, seed: u64) -> Request {
    Request {
        id,
        prompt,
        max_new_tokens: max_new,
        stop_at_eos: true,
        sampler: SamplerKind::Temperature(0.8),
        seed,
        arrival: 0,
    }
}

fn drain<B: Backend>(engine: &mut ServeEngine<B>) -> Vec<Completion> {
    let mut out = Vec::new();
    while !engine.is_idle() {
        out.extend(engine.step());
    }
    out
}

/// Per-id token streams, the unit of the bit-identity contract.
fn streams(mut done: Vec<Completion>) -> Vec<(u64, Vec<u32>)> {
    done.sort_by_key(|c| c.id);
    done.into_iter().map(|c| (c.id, c.tokens)).collect()
}

props! {
    #![config(cases = 24)]

    /// The tentpole grid: {token budget × prefill ratio × chunk size ×
    /// flat/paged × serial/parallel} on the CPU backend. The unified
    /// engine must reproduce the sequential prefill-then-decode engine's
    /// streams exactly, and (flat KV) land on the same virtual clock,
    /// since both forward each context token and each sampled-but-not-
    /// final token exactly once and a CPU tick costs the rows it carries.
    fn cpu_unified_matches_sequential_oracle_across_grid(
        n in 1usize..8,
        budget in 1usize..13,
        pct in 0usize..101,
        chunk in 1usize..6,
        mode in 0usize..4, // bit 0: paged KV, bit 1: parallel kernels
        seed in any_u64(),
    ) {
        let (paged, parallel) = (mode & 1 != 0, mode & 2 != 0);
        let mut legacy = cpu_engine(3, chunk, paged, parallel, None);
        let mut uni = cpu_engine(3, chunk, paged, parallel, unified(budget, pct as u32));
        for r in random_requests(seed, n) {
            prop_assert!(legacy.submit(r.clone()).is_ok());
            prop_assert!(uni.submit(r).is_ok());
        }
        let a = streams(drain(&mut legacy));
        let b = streams(drain(&mut uni));
        prop_assert_eq!(&a, &b, "unified (budget {}, pct {}) diverged", budget, pct);
        prop_assert!(uni.stats().mixed_ticks > 0, "unified engine must tick");
        prop_assert!(uni.all_slots_free(), "pool did not drain");
        if paged {
            // Radix prefix hits can differ between the engines (admission
            // timing differs), so only the streams are comparable.
            uni.check_paged_invariants().unwrap();
        } else {
            prop_assert_eq!(
                legacy.now(), uni.now(),
                "flat CPU total cost must be the rows forwarded, identically"
            );
        }
    }

    /// The same oracle contract on the accelerator simulation (smaller
    /// grid — device engines are heavier to build). Cycle costs legally
    /// differ (one fused pass streams weights once), so only the token
    /// streams are compared.
    fn accel_unified_matches_sequential_oracle(
        n in 1usize..5,
        budget in 1usize..9,
        pct in 0usize..101,
        paged in any_bool(),
        seed in any_u64(),
    ) {
        let mut legacy = accel_engine(3, 4, paged, None);
        let mut uni = accel_engine(3, 4, paged, unified(budget, pct as u32));
        for r in random_requests(seed, n) {
            prop_assert!(legacy.submit(r.clone()).is_ok());
            prop_assert!(uni.submit(r).is_ok());
        }
        let a = streams(drain(&mut legacy));
        let b = streams(drain(&mut uni));
        prop_assert_eq!(&a, &b, "accel unified (budget {}, pct {}) diverged", budget, pct);
        prop_assert!(uni.stats().mixed_ticks > 0);
        prop_assert!(uni.all_slots_free());
        if paged {
            uni.check_paged_invariants().unwrap();
        }
    }

    /// Bursty open-loop traffic: the unified engine must serve a seeded
    /// burst workload with streams identical to the legacy engine, and
    /// two identical runs must render byte-identical reports (the
    /// determinism contract verify.sh leans on).
    fn bursty_traffic_is_stream_identical_and_reproducible(
        n in 1usize..12,
        burst in 1usize..5,
        seed in any_u64(),
    ) {
        let cfg = ModelConfig::test_tiny();
        let lg_cfg = LoadGenConfig {
            n_requests: n,
            mode: ArrivalMode::Bursty { burst_size: burst, burst_gap: 16 },
            prompt_len: (2, 8),
            shared_prefix_len: 0,
            max_new_tokens: (1, 6),
            sampler: SamplerKind::Temperature(0.8),
            stop_at_eos: true,
            vocab_size: cfg.vocab_size,
            seq_len: cfg.seq_len,
            seed,
        };
        let run_unified = || {
            let mut engine = cpu_engine(3, 4, false, false, unified(8, 50));
            let done = engine.run_with_source(&mut LoadGen::new(&lg_cfg));
            let report =
                ServeReport::from_run(&done, engine.stats(), engine.slot_reuses()).render("cpu");
            (streams(done), report)
        };
        let (s1, r1) = run_unified();
        let (s2, r2) = run_unified();
        prop_assert_eq!(&s1, &s2, "same seed must reproduce the same streams");
        prop_assert_eq!(&r1, &r2, "same seed must render byte-identical reports");

        let mut legacy = cpu_engine(3, 4, false, false, None);
        let legacy_streams = streams(legacy.run_with_source(&mut LoadGen::new(&lg_cfg)));
        prop_assert_eq!(&s1, &legacy_streams, "bursty unified diverged from legacy");
    }
}

/// A sequence can finish mid-tick (its sampled token exhausts the budget)
/// while another sequence is still mid-prefill in the same tick; the
/// streams must match the sequential engine and the tick must have
/// carried both row classes.
#[test]
fn sequence_finishing_mid_tick_while_another_prefills_is_bit_identical() {
    let mut legacy = cpu_engine(3, 2, false, false, None);
    let mut uni = cpu_engine(3, 2, false, false, unified(8, 50));
    let reqs = [
        req(0, vec![1, 5], 1, 70), // finishes on its first sample
        req(1, vec![1, 6], 6, 71), // keeps decoding
        req(2, vec![1, 7, 8, 9, 10, 11, 12, 13, 14, 15], 4, 72), // 5 chunks of prefill
    ];
    for r in &reqs {
        legacy.submit(r.clone()).unwrap();
        uni.submit(r.clone()).unwrap();
    }
    let a = streams(drain(&mut legacy));
    let b = streams(drain(&mut uni));
    assert_eq!(a, b, "mid-tick finish changed a stream");
    let stats = uni.stats();
    assert!(
        stats.overlap_ticks > 0,
        "a tick must have carried decode and prefill rows together"
    );
    assert_eq!(legacy.now(), uni.now(), "total row cost must agree");
}

/// A prefill chunk that exactly fills the token budget: the tick carries
/// precisely `budget` rows, the prompt splits into exact chunks, and the
/// stream is unchanged.
#[test]
fn prefill_chunk_exactly_filling_budget_is_bit_identical() {
    let mut legacy = cpu_engine(2, 4, false, false, None);
    let mut uni = cpu_engine(2, 4, false, false, unified(4, 50));
    let r = req(0, vec![1, 5, 9, 13, 17, 21, 25, 29], 3, 33); // 8 = 2 × budget
    legacy.submit(r.clone()).unwrap();
    uni.submit(r).unwrap();
    let a = streams(drain(&mut legacy));
    let b = streams(drain(&mut uni));
    assert_eq!(a, b, "exact-fit chunk changed the stream");
    let stats = uni.stats();
    assert_eq!(
        stats.max_tick_tokens, 4,
        "the widest tick must be exactly the budget"
    );
    assert_eq!(stats.prefill_chunks, 2, "8-token prompt must split in two");
}

/// A token budget smaller than one configured chunk forces the scheduler
/// to split the chunk across ticks; the sequential engine (whose chunks
/// are never budget-capped) must still see identical streams.
#[test]
fn budget_smaller_than_chunk_forces_split_and_stays_bit_identical() {
    let mut legacy = cpu_engine(2, 8, false, false, None);
    let mut uni = cpu_engine(2, 8, false, false, unified(3, 100));
    let r = req(0, vec![1, 5, 9, 13, 17, 21, 25, 29], 3, 44);
    legacy.submit(r.clone()).unwrap();
    uni.submit(r).unwrap();
    let a = streams(drain(&mut legacy));
    let b = streams(drain(&mut uni));
    assert_eq!(a, b, "forced chunk split changed the stream");
    let stats = uni.stats();
    assert!(stats.max_tick_tokens <= 3, "the budget is a hard row cap");
    assert_eq!(
        stats.prefill_chunks, 3,
        "8 prompt rows through a 3-row budget must take 3 runs"
    );
    assert_eq!(legacy.stats().prefill_chunks, 1, "the oracle takes one");
}

/// Preemption of a half-prefilled sequence: two old decoders grow their
/// block tables until the arena runs dry while a young long-prompt
/// sequence is still mid-prefill; the young sequence is preempted (blocks
/// released, re-prefilled from scratch later) and every stream must still
/// match the flat sequential engine exactly.
#[test]
fn preempting_half_prefilled_sequence_under_block_pressure_is_bit_identical() {
    let tight = BlockConfig {
        block_size: 4,
        n_blocks: 9, // one full context needs 8; three sequences must fight
    };
    let mut flat = cpu_engine(3, 4, false, false, None);
    let mut uni = cpu_paged_engine(3, 4, tight, unified(4, 50));
    let mut reqs = vec![
        req(0, vec![1, 5], 20, 80),
        req(1, vec![1, 6], 20, 81),
        // Admitted last (youngest): 20 prompt tokens = 5 blocks, prefilled
        // 2 rows per tick under the shared budget — still cold when the
        // decoders outgrow the arena.
        req(
            2,
            (0..20).map(|i| if i == 0 { 1 } else { 3 + i }).collect(),
            4,
            82,
        ),
    ];
    for r in &mut reqs {
        r.stop_at_eos = false; // force long generations
        flat.submit(r.clone()).unwrap();
        uni.submit(r.clone()).unwrap();
    }
    let a = streams(drain(&mut flat));
    let b = streams(drain(&mut uni));
    assert_eq!(a, b, "preempting a cold sequence changed a stream");
    assert_eq!(b[0].1.len(), 20, "decoder budgets must be exhausted");
    assert!(
        uni.stats().preemptions > 0,
        "the tight arena must force preemption"
    );
    uni.check_paged_invariants().unwrap();
    assert!(uni.all_slots_free());
}

/// Satellite 1, directly: a CPU tick costs exactly the token rows it
/// carries. One 5-token prompt through a 3-row chunk advances the clock
/// by 3, 2, 1 (chunk, chunk remainder, decode row), then 0 on the final
/// tick whose sampled token ends the request without a forward.
#[test]
fn cpu_tick_cost_is_exactly_the_rows_carried() {
    let mut uni = cpu_engine(2, 3, false, false, unified(8, 50));
    let mut r = req(0, vec![1, 5, 9, 13, 17], 2, 91);
    r.stop_at_eos = false;
    uni.submit(r).unwrap();
    let mut deltas = Vec::new();
    while !uni.is_idle() {
        let before = uni.now();
        uni.step();
        deltas.push(uni.now() - before);
    }
    assert_eq!(
        deltas,
        vec![3, 2, 1, 0],
        "tick cost must equal rows carried per tick"
    );
}

/// Satellite 1, report regression: for a pure-decode-regime workload
/// (every prompt fits one chunk, the budget covers every row, nobody is
/// deferred) the unified scheduler produces the **same report bytes** as
/// the phase-serialized engine — same timestamps, same rendered counters;
/// the new stats fields are deliberately not rendered.
#[test]
fn pure_decode_report_bytes_match_legacy_engine() {
    let reqs = [
        req(0, vec![1, 5, 9], 6, 10),
        req(1, vec![1, 6, 10, 14], 5, 11),
        req(2, vec![1, 7], 7, 12),
        req(3, vec![1, 8, 12, 16, 20], 4, 13),
    ];
    let run = |unified_cfg: Option<UnifiedConfig>| {
        let mut engine = cpu_engine(4, 6, false, false, unified_cfg);
        for r in &reqs {
            engine.submit(r.clone()).unwrap();
        }
        let done = drain(&mut engine);
        ServeReport::from_run(&done, engine.stats(), engine.slot_reuses()).render("cpu")
    };
    let legacy = run(None);
    let new = run(unified(64, 50));
    assert_eq!(
        legacy, new,
        "pure-decode workloads must render identical report bytes"
    );
}

/// The accel variant of the report regression (single request: one
/// sequence's fused mixed pass runs the same device timing as the
/// separate prefill/decode passes, so even cycle counts must agree).
#[test]
fn accel_single_request_report_bytes_match_legacy_engine() {
    let r = req(0, vec![1, 5, 9, 13], 6, 21);
    let run = |unified_cfg: Option<UnifiedConfig>| {
        let mut engine = accel_engine(2, 6, false, unified_cfg);
        engine.submit(r.clone()).unwrap();
        let done = drain(&mut engine);
        ServeReport::from_run(&done, engine.stats(), engine.slot_reuses()).render("accel")
    };
    let legacy = run(None);
    let new = run(unified(64, 50));
    assert_eq!(
        legacy, new,
        "accel single-request report bytes must be unchanged"
    );
}

/// The headline claim (ISSUE 6 acceptance): under a bursty workload at
/// equal KV budget, the unified scheduler's fused tick streams weights
/// once for decode + prefill together, so the accelerator reaches first
/// tokens sooner — TTFT p99 must strictly improve over the
/// phase-serialized engine, with identical token streams.
#[test]
fn bursty_accel_ttft_p99_improves_at_equal_kv_budget() {
    let cfg = ModelConfig::test_tiny();
    let lg_cfg = LoadGenConfig {
        n_requests: 12,
        mode: ArrivalMode::Bursty {
            burst_size: 4,
            burst_gap: 32,
        },
        prompt_len: (8, 16),
        max_new_tokens: (4, 10),
        shared_prefix_len: 0,
        sampler: SamplerKind::Temperature(0.8),
        stop_at_eos: false,
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        seed: 1234,
    };
    let run = |unified_cfg: Option<UnifiedConfig>| {
        let mut engine = accel_engine(4, 4, true, unified_cfg);
        let done = engine.run_with_source(&mut LoadGen::new(&lg_cfg));
        let report = ServeReport::from_run(&done, engine.stats(), engine.slot_reuses());
        (streams(done), report)
    };
    let (legacy_streams, legacy) = run(None);
    let (unified_streams, new) = run(unified(16, 50));
    assert_eq!(
        legacy_streams, unified_streams,
        "the speedup must not touch the tokens"
    );
    assert!(
        new.ttft.p99 < legacy.ttft.p99,
        "unified TTFT p99 ({} cycles) must beat legacy ({} cycles)",
        new.ttft.p99,
        legacy.ttft.p99
    );
    assert!(
        new.makespan <= legacy.makespan,
        "fused ticks must not lengthen the run ({} vs {})",
        new.makespan,
        legacy.makespan
    );
}
