//! Regression guards on the energy model: the mechanisms behind Fig 2(b)
//! pinned as invariants.

use speedllm::accel::opt::OptConfig;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::sampler::SamplerKind;

fn report(cfg: ModelConfig, opt: OptConfig, gen: usize) -> speedllm::accel::InferenceReport {
    let sys = AcceleratedLlm::synthetic(cfg, 42, opt).unwrap();
    let mut s = sys.session(SamplerKind::Argmax, 0);
    s.generate("Once upon a time", gen).unwrap()
}

#[test]
fn hbm_energy_dominates_and_is_variant_invariant() {
    // The weight stream is the same in every variant, so HBM dynamic
    // energy must agree within the activation-round-trip margin — this is
    // *why* fusion only buys ~1.01x.
    let cfg = ModelConfig::stories15m();
    let full = report(cfg, OptConfig::full(), 8);
    let unopt = report(cfg, OptConfig::unoptimized(), 8);
    let ratio = unopt.energy.hbm_j / full.energy.hbm_j;
    assert!((1.0..1.1).contains(&ratio), "HBM energy ratio {ratio}");
    // And HBM dynamic energy is the single largest component for ours.
    let e = &full.energy;
    for (name, j) in [
        ("ocm", e.ocm_j),
        ("mpe_dyn", e.mpe_dyn_j),
        ("sfu_dyn", e.sfu_dyn_j),
        ("launch", e.launch_j),
        ("mpe_static", e.mpe_static_j),
        ("sfu_static", e.sfu_static_j),
        ("baseline", e.baseline_j),
    ] {
        assert!(e.hbm_j > j, "{name} ({j}) exceeds HBM energy ({})", e.hbm_j);
    }
}

#[test]
fn dynamic_arithmetic_energy_is_variant_invariant() {
    // Same model, same math: MAC and SFU dynamic energy must be identical
    // across pipeline/memory variants.
    let cfg = ModelConfig::stories15m();
    let full = report(cfg, OptConfig::full(), 6);
    let nop = report(cfg, OptConfig::no_parallel(), 6);
    assert!((full.energy.mpe_dyn_j - nop.energy.mpe_dyn_j).abs() < 1e-12);
    assert!((full.energy.sfu_dyn_j - nop.energy.sfu_dyn_j).abs() < 1e-12);
}

#[test]
fn slower_variants_pay_proportional_baseline_energy() {
    let cfg = ModelConfig::stories15m();
    let full = report(cfg, OptConfig::full(), 6);
    let unopt = report(cfg, OptConfig::unoptimized(), 6);
    let time_ratio = unopt.total_latency_s() / full.total_latency_s();
    let baseline_ratio = unopt.energy.baseline_j / full.energy.baseline_j;
    assert!(
        (baseline_ratio / time_ratio - 1.0).abs() < 0.05,
        "baseline energy must scale with time: {baseline_ratio} vs {time_ratio}"
    );
}

#[test]
fn energy_per_token_is_length_invariant_in_steady_state() {
    let cfg = ModelConfig::stories260k();
    let short = report(cfg, OptConfig::full(), 16);
    let long = report(cfg, OptConfig::full(), 64);
    // Normalize by *all* tokens processed (prompt + generated) so prefill
    // energy is attributed, not amortized differently between runs.
    let toks = |r: &speedllm::accel::InferenceReport| {
        (r.output.prompt_tokens.len() + r.output.generated_tokens.len()) as f64
    };
    let e_short = short.energy.total_j() / toks(&short);
    let e_long = long.energy.total_j() / toks(&long);
    let rel = (e_long / e_short - 1.0).abs();
    // Slight growth from KV paging is expected; large drift is a bug.
    assert!(rel < 0.25, "per-token energy drifted {:.0}%", rel * 100.0);
}

#[test]
fn fig2b_exact_mechanism_decomposition() {
    // The 1.18x total comes from time-proportional components (baseline)
    // plus extra launches/stalls/activation traffic; dynamic arithmetic is
    // shared. Verify the delta is fully explained by those components.
    let cfg = ModelConfig::stories15m();
    let full = report(cfg, OptConfig::full(), 8);
    let unopt = report(cfg, OptConfig::unoptimized(), 8);
    let delta_total = unopt.energy.total_j() - full.energy.total_j();
    let explained = (unopt.energy.baseline_j - full.energy.baseline_j)
        + (unopt.energy.launch_j - full.energy.launch_j)
        + (unopt.energy.hbm_j - full.energy.hbm_j)
        + (unopt.energy.ocm_j - full.energy.ocm_j)
        + (unopt.energy.dma_static_j - full.energy.dma_static_j)
        + (unopt.energy.mpe_static_j - full.energy.mpe_static_j)
        + (unopt.energy.sfu_static_j - full.energy.sfu_static_j)
        + (unopt.energy.mpe_dyn_j - full.energy.mpe_dyn_j)
        + (unopt.energy.sfu_dyn_j - full.energy.sfu_dyn_j);
    assert!(
        (delta_total - explained).abs() < 1e-9,
        "energy delta not fully decomposed: {delta_total} vs {explained}"
    );
    assert!(delta_total > 0.0, "unoptimized must cost more energy");
}

#[test]
fn average_power_ordering_is_physical() {
    // The streamed design burns more *power* (more hardware active at
    // once) while using less *energy per token* — the ordering the paper's
    // "comparable poweruse" remark glosses over.
    let cfg = ModelConfig::stories15m();
    let full = report(cfg, OptConfig::full(), 8);
    let unopt = report(cfg, OptConfig::unoptimized(), 8);
    assert!(full.avg_power_w() > unopt.avg_power_w());
    assert!(full.tokens_per_joule() > unopt.tokens_per_joule());
}
