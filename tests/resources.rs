//! Device-fit tests: every shipped design point must fit the XCU280
//! fabric, oversized ones must be rejected at construction, and the
//! utilization report must be sane.

use std::sync::Arc;

use speedllm::accel::engine::{AccelConfig, Engine};
use speedllm::accel::opt::OptConfig;
use speedllm::fpga::mpe::{MpeConfig, Precision};
use speedllm::fpga::resources::Resources;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::weights::TransformerWeights;

#[test]
fn every_shipped_variant_fits_the_u280() {
    for (name, opt) in OptConfig::all_corners() {
        let cfg = AccelConfig::for_opt(&opt);
        cfg.validate()
            .unwrap_or_else(|e| panic!("{name} does not fit: {e}"));
    }
    AccelConfig::for_opt(&OptConfig::full_int8())
        .validate()
        .expect("int8 design must fit");
}

#[test]
fn utilization_is_meaningful() {
    let cfg = AccelConfig::for_opt(&OptConfig::full());
    let used = cfg.resource_usage();
    let budget = Resources::u280_budget();
    let u = used.utilization(&budget);
    // A real accelerator uses a substantial chunk of the device but fits.
    assert!(u.iter().all(|&f| f <= 1.0), "{u:?}");
    assert!(
        u[2] > 0.15,
        "DSP utilization should be substantial: {}",
        u[2]
    );
    assert!(
        u[0] > 0.10,
        "LUT utilization should be substantial: {}",
        u[0]
    );
}

#[test]
fn oversized_mpe_is_rejected_at_engine_construction() {
    let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 1));
    let mut cfg = AccelConfig::for_opt(&OptConfig::full());
    cfg.mpe = MpeConfig {
        lanes: 2048,
        vec_width: 16,
        pipeline_depth: 12,
        precision: Precision::Fp32,
    };
    let err = Engine::with_config(weights, OptConfig::full(), cfg);
    assert!(err.is_err(), "a 32k-MAC fp32 array cannot fit the U280");
}

#[test]
fn oversized_activation_pool_is_rejected() {
    let weights = Arc::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 1));
    let mut cfg = AccelConfig::for_opt(&OptConfig::full());
    cfg.activation_pool_bytes = 64 << 20; // 64 MiB > U280 URAM
    let err = Engine::with_config(weights, OptConfig::full(), cfg);
    assert!(err.is_err(), "pool larger than URAM must be rejected");
}

#[test]
fn int8_frees_dsp_headroom() {
    let fp32 = AccelConfig::for_opt(&OptConfig::full()).resource_usage();
    let int8 = AccelConfig::for_opt(&OptConfig::full_int8()).resource_usage();
    // Same DSP budget delivers far more MACs/cycle in int8 (and the fabric
    // cost per MAC is much lower).
    let f = MpeConfig::u280_fp32();
    let q = MpeConfig::u280_int8();
    assert!(q.macs_per_cycle() > 5 * f.macs_per_cycle());
    assert_eq!(fp32.dsps, int8.dsps);
}

#[test]
fn kv_cache_fits_hbm_for_all_presets() {
    use speedllm::fpga::hbm::HbmConfig;
    let hbm = HbmConfig::u280();
    for cfg in [
        ModelConfig::stories260k(),
        ModelConfig::stories15m(),
        ModelConfig::stories42m(),
        ModelConfig::stories110m(),
        ModelConfig::tinyllama1_1b(),
    ] {
        let need = cfg.weight_bytes(4) as u64 + cfg.kv_cache_bytes() as u64;
        assert!(need < hbm.capacity_bytes, "{cfg} needs {need} B of HBM");
    }
}
