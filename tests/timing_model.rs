//! Quantitative regression guards on the timing model: the relationships
//! that make Fig. 2 come out right are pinned here as inequalities and
//! decompositions, so a cost-model change that silently breaks the
//! reproduction fails tests instead of just shifting numbers.

use std::sync::Arc;

use speedllm::accel::engine::{AccelConfig, Engine};
use speedllm::accel::opt::OptConfig;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::weights::TransformerWeights;

fn weights(cfg: ModelConfig) -> Arc<TransformerWeights> {
    Arc::new(TransformerWeights::synthetic(cfg, 42))
}

#[test]
fn launch_count_equals_kernel_count() {
    for (fused, expected_per_token) in [(true, 26usize), (false, 105usize)] {
        let mut opt = OptConfig::full();
        opt.operator_fusion = fused;
        let mut e = Engine::new(weights(ModelConfig::stories15m()), opt).unwrap();
        let r = e.decode_step(1, 0);
        assert_eq!(
            r.stats.kernel_launches as usize, expected_per_token,
            "fused={fused}"
        );
        assert_eq!(e.schedule().kernels.len(), expected_per_token);
    }
}

#[test]
fn alloc_stalls_equal_materialized_hbm_values() {
    let mut e = Engine::new(weights(ModelConfig::test_tiny()), OptConfig::no_reuse()).unwrap();
    let r = e.decode_step(1, 0);
    assert_eq!(r.stats.alloc_stalls as usize, e.memory_plan().hbm_values());
}

#[test]
fn each_optimization_helps_individually() {
    // Enabling any one optimization on top of the unoptimized baseline
    // must reduce per-token cycles.
    let w = weights(ModelConfig::stories15m());
    let base = {
        let mut e = Engine::new(Arc::clone(&w), OptConfig::unoptimized()).unwrap();
        e.decode_step(1, 0).cycles
    };
    for (name, opt) in [
        (
            "P",
            OptConfig {
                stream_parallel: true,
                ..OptConfig::unoptimized()
            },
        ),
        (
            "R",
            OptConfig {
                memory_reuse: true,
                ..OptConfig::unoptimized()
            },
        ),
        (
            "F",
            OptConfig {
                operator_fusion: true,
                ..OptConfig::unoptimized()
            },
        ),
    ] {
        let mut e = Engine::new(Arc::clone(&w), opt).unwrap();
        let c = e.decode_step(1, 0).cycles;
        assert!(c < base, "{name} alone did not help: {c} vs {base}");
    }
}

#[test]
fn optimizations_compose_monotonically() {
    // full <= any two-of-three <= any one-of-three <= none, on cycles.
    let w = weights(ModelConfig::stories15m());
    let cycles = |opt: OptConfig| {
        let mut e = Engine::new(Arc::clone(&w), opt).unwrap();
        e.decode_step(1, 0).cycles.0
    };
    let full = cycles(OptConfig::full());
    for (_, opt) in OptConfig::paper_variants() {
        assert!(full <= cycles(opt), "full must be fastest");
    }
    let unopt = cycles(OptConfig::unoptimized());
    for (name, opt) in OptConfig::all_corners() {
        let c = cycles(opt);
        assert!(c <= unopt, "{name} slower than unoptimized: {c} vs {unopt}");
        assert!(c >= full, "{name} faster than full: {c} vs {full}");
    }
}

#[test]
fn weight_stream_is_the_dominant_read_traffic() {
    let cfg = ModelConfig::stories15m();
    let mut e = Engine::new(weights(cfg), OptConfig::full()).unwrap();
    let r = e.decode_step(1, 0);
    let weight_bytes = cfg.weight_bytes(4) as f64;
    let read = r.stats.hbm.read_bytes as f64;
    assert!(
        (read / weight_bytes - 1.0).abs() < 0.1,
        "per-token reads {read} should be ~weight bytes {weight_bytes}"
    );
}

#[test]
fn int8_reads_roughly_quarter_of_fp32() {
    let cfg = ModelConfig::stories15m();
    let mut f = Engine::new(weights(cfg), OptConfig::full()).unwrap();
    let mut q = Engine::new(weights(cfg), OptConfig::full_int8()).unwrap();
    let rf = f.decode_step(1, 0).stats.hbm.read_bytes as f64;
    let rq = q.decode_step(1, 0).stats.hbm.read_bytes as f64;
    let ratio = rf / rq;
    assert!((3.0..4.5).contains(&ratio), "int8 read ratio {ratio}");
}

#[test]
fn mpe_busy_is_invariant_across_pipeline_variants() {
    // Pipelining changes when compute happens, not how much.
    let w = weights(ModelConfig::stories15m());
    let mut a = Engine::new(Arc::clone(&w), OptConfig::full()).unwrap();
    let mut b = Engine::new(w, OptConfig::no_parallel()).unwrap();
    let sa = a.decode_step(1, 0).stats;
    let sb = b.decode_step(1, 0).stats;
    assert_eq!(sa.mpe.macs, sb.mpe.macs);
    assert_eq!(sa.mpe.busy_cycles, sb.mpe.busy_cycles);
}

#[test]
fn deeper_double_buffering_never_hurts() {
    let w = weights(ModelConfig::stories260k());
    let mut prev = u64::MAX;
    for depth in [1usize, 2, 4] {
        let mut cfg = AccelConfig::for_opt(&OptConfig::full());
        cfg.double_buffer_depth = depth;
        let mut e = Engine::with_config(Arc::clone(&w), OptConfig::full(), cfg).unwrap();
        let c = e.decode_step(1, 0).cycles.0;
        assert!(c <= prev, "depth {depth} regressed: {c} vs {prev}");
        prev = c;
    }
}

#[test]
fn streamed_total_beats_sum_of_stage_busy() {
    // In the streamed design the makespan must be well below the sum of
    // all resource busy times (that sum is what the sequential design
    // approaches).
    let mut e = Engine::new(weights(ModelConfig::stories15m()), OptConfig::full()).unwrap();
    let r = e.decode_step(1, 0);
    let busy_sum = r.stats.mpe.busy_cycles + r.stats.sfu.busy_cycles + r.stats.dma_busy_cycles / 24; // channel-cycles back to engine-cycles
    assert!(
        r.cycles.0 * 3 < busy_sum * 2,
        "overlap missing: makespan {} vs busy sum {busy_sum}",
        r.cycles.0
    );
}

#[test]
fn per_token_cost_is_stable_in_steady_state() {
    // Consecutive decode steps differ only by one KV page at most.
    let mut e = Engine::new(weights(ModelConfig::stories15m()), OptConfig::full()).unwrap();
    let mut prev = e.decode_step(1, 0).cycles.0;
    for pos in 1..6 {
        let c = e.decode_step(1, pos).cycles.0;
        let rel = (c as f64 - prev as f64).abs() / prev as f64;
        assert!(
            rel < 0.05,
            "step-to-step jump of {:.1}% at pos {pos}",
            rel * 100.0
        );
        prev = c;
    }
}
