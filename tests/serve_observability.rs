//! ISSUE 7 acceptance: the serve-layer observability subsystem.
//!
//! * **Reconciliation** — for every completed request, the phase
//!   breakdown reconstructed from the lifecycle event log exactly
//!   matches the engine's own `Completion` timestamps: queue + prefill +
//!   decode + stall == e2e, the `first_token` event tick equals the
//!   reported TTFT base, and admission/finish ticks agree — over a
//!   seeded bursty workload on both backends, flat and paged (with
//!   preemption forced).
//! * **Neutrality** — attaching a recorder and enabling telemetry
//!   leaves token streams and `ServeReport` bytes bit-identical.
//! * **Determinism** — every export (event JSONL, tick CSV, Perfetto
//!   JSON, `analyze` text) is byte-identical across repeated runs.
//!
//! The neutrality check toggles process-global telemetry, so it lives in
//! this single-`#[test]`-per-binary arrangement like
//! `unified_batch_telemetry.rs`.

use std::sync::Arc;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::weights::TransformerWeights;
use speedllm::pagedkv::BlockConfig;
use speedllm::serve::{
    events_to_chrome, phase_breakdowns, render_analysis, AccelBackend, AnalyzeOptions, Backend,
    Completion, CpuBackend, LoadGen, LoadGenConfig, ServeConfig, ServeEngine, ServeRecorder,
    ServeReport,
};
use speedllm::telemetry as tel;

fn weights() -> TransformerWeights {
    TransformerWeights::synthetic(ModelConfig::test_tiny(), 42)
}

/// A seeded bursty workload; `long` makes generations long enough to
/// force preemption on a tight block budget.
fn bursty_workload(n: usize, long: bool) -> LoadGenConfig {
    let cfg = ModelConfig::test_tiny();
    LoadGenConfig {
        n_requests: n,
        mode: speedllm::serve::ArrivalMode::Bursty {
            burst_size: 3,
            burst_gap: 40,
        },
        prompt_len: (2, 5),
        shared_prefix_len: 0,
        max_new_tokens: if long { (16, 20) } else { (1, 8) },
        sampler: SamplerKind::Temperature(0.8),
        stop_at_eos: !long,
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        seed: 7,
    }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        slots: 2,
        max_batch: 8,
        prefill_chunk: 4,
        queue_cap: 16,
        unified: None,
    }
}

/// Runs a workload with a recorder attached; returns completions, the
/// recorder, and the rendered report.
fn run_recorded<B: speedllm::serve::Backend>(
    backend: B,
    scfg: ServeConfig,
    lcfg: &LoadGenConfig,
) -> (Vec<Completion>, ServeRecorder, String) {
    let mut engine = ServeEngine::new(backend, scfg);
    engine.attach_recorder(ServeRecorder::new());
    let name = engine.backend().name();
    let completions = engine.run_with_source(&mut LoadGen::new(lcfg));
    let report =
        ServeReport::from_run(&completions, engine.stats(), engine.slot_reuses()).render(name);
    let rec = engine.take_recorder().expect("recorder was attached");
    (completions, rec, report)
}

/// The acceptance cross-check: every completion's event-derived phase
/// breakdown must reconcile exactly with its reported timestamps.
fn assert_reconciles(label: &str, completions: &[Completion], rec: &ServeRecorder) {
    assert_eq!(rec.events.dropped(), 0, "{label}: event log overflowed");
    let phases = phase_breakdowns(rec.events.events());
    for c in completions {
        let p = phases
            .iter()
            .find(|p| p.id == c.id)
            .unwrap_or_else(|| panic!("{label}: request {} missing from event log", c.id));
        assert_eq!(p.arrival, c.arrival, "{label}: req {} arrival", c.id);
        assert_eq!(
            p.admitted,
            Some(c.admitted_at),
            "{label}: req {} admission tick",
            c.id
        );
        assert_eq!(
            p.first_token, c.first_token_at,
            "{label}: req {} first-token tick (must equal reported TTFT base)",
            c.id
        );
        assert_eq!(
            p.finished,
            Some(c.finished_at),
            "{label}: req {} finish tick",
            c.id
        );
        assert_eq!(
            p.tokens,
            c.tokens.len() as u64,
            "{label}: req {} token count",
            c.id
        );
        assert_eq!(
            p.queue_wait + p.prefill + p.decode + p.stall,
            c.e2e(),
            "{label}: req {} phases must sum exactly to e2e",
            c.id
        );
        if let Some(ttft) = c.ttft() {
            assert_eq!(
                p.first_token.unwrap() - p.arrival,
                ttft,
                "{label}: req {} event-derived TTFT",
                c.id
            );
        }
        // token_ticks is the ITL substrate: first entry is the TTFT
        // tick, entries are sorted, and the count matches the output.
        assert_eq!(c.token_ticks.len(), c.tokens.len());
        assert_eq!(c.token_ticks.first().copied(), c.first_token_at);
        assert!(c.token_ticks.windows(2).all(|w| w[0] <= w[1]));
    }
    assert!(
        !rec.ticks.is_empty(),
        "{label}: tick series recorded nothing"
    );
}

#[test]
fn observability_reconciles_and_never_perturbs_streams() {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            tel::set_enabled(false);
            tel::reset();
        }
    }
    let _restore = Restore;
    tel::set_enabled(false);
    tel::reset();

    // ── Reconciliation: CPU flat, CPU paged (preemption forced), accel ──
    let lcfg = bursty_workload(10, false);
    let (completions, rec, _) = run_recorded(
        CpuBackend::new(Transformer::new(weights())),
        serve_cfg(),
        &lcfg,
    );
    assert_eq!(completions.len(), 10);
    assert_reconciles("cpu flat", &completions, &rec);

    // Tight block budget + long generations: preemption stalls must
    // appear in the breakdown and still reconcile exactly.
    let long = bursty_workload(3, true);
    let (completions, rec, _) = run_recorded(
        CpuBackend::new_paged(
            Transformer::new(weights()),
            BlockConfig {
                block_size: 4,
                n_blocks: 9,
            },
        ),
        serve_cfg(),
        &long,
    );
    assert_reconciles("cpu paged tight", &completions, &rec);
    let phases = phase_breakdowns(rec.events.events());
    assert!(
        phases.iter().any(|p| p.preemptions > 0 && p.stall > 0),
        "tight blocks must force a preemption with a visible stall"
    );

    let accel =
        || AccelBackend::new(Engine::new(Arc::new(weights()), OptConfig::full()).expect("engine"));
    let (completions, rec, _) = run_recorded(accel(), serve_cfg(), &lcfg);
    assert_reconciles("accel flat", &completions, &rec);

    // Unified scheduler: same reconciliation through the mixed tick path.
    let unified_cfg = ServeConfig {
        unified: Some(speedllm::serve::UnifiedConfig {
            token_budget: 8,
            prefill_pct: 50,
        }),
        ..serve_cfg()
    };
    let (completions, rec, _) = run_recorded(
        CpuBackend::new(Transformer::new(weights())),
        unified_cfg,
        &lcfg,
    );
    assert_reconciles("cpu unified", &completions, &rec);

    // ── Neutrality: recorder + telemetry change nothing observable ──
    for (label, paged) in [("flat", false), ("paged", true)] {
        let build = |paged: bool| {
            if paged {
                CpuBackend::new_paged(
                    Transformer::new(weights()),
                    BlockConfig {
                        block_size: 4,
                        n_blocks: 16,
                    },
                )
            } else {
                CpuBackend::new(Transformer::new(weights()))
            }
        };
        // Baseline: no recorder, telemetry off.
        let mut engine = ServeEngine::new(build(paged), serve_cfg());
        let name = engine.backend().name();
        let base = engine.run_with_source(&mut LoadGen::new(&lcfg));
        let base_report =
            ServeReport::from_run(&base, engine.stats(), engine.slot_reuses()).render(name);

        // Instrumented: recorder attached AND telemetry enabled.
        tel::set_enabled(true);
        tel::reset();
        let (instr, _rec, instr_report) = run_recorded(build(paged), serve_cfg(), &lcfg);
        tel::set_enabled(false);
        tel::reset();

        assert_eq!(base.len(), instr.len());
        for (a, b) in base.iter().zip(&instr) {
            assert_eq!(
                a.tokens, b.tokens,
                "cpu {label}: recording changed request {}'s token stream",
                a.id
            );
        }
        assert_eq!(
            base_report, instr_report,
            "cpu {label}: recording changed the report bytes"
        );
    }
    // Accel backend neutrality (flat; the paged path shares the engine
    // code exercised above).
    let mut engine = ServeEngine::new(accel(), serve_cfg());
    let name = engine.backend().name();
    let base = engine.run_with_source(&mut LoadGen::new(&lcfg));
    let base_report =
        ServeReport::from_run(&base, engine.stats(), engine.slot_reuses()).render(name);
    tel::set_enabled(true);
    tel::reset();
    let (instr, _rec, instr_report) = run_recorded(accel(), serve_cfg(), &lcfg);
    tel::set_enabled(false);
    tel::reset();
    for (a, b) in base.iter().zip(&instr) {
        assert_eq!(a.tokens, b.tokens, "accel: recording changed a stream");
    }
    assert_eq!(base_report, instr_report, "accel: report bytes changed");

    // ── Export determinism: two identical runs, byte-identical outputs ──
    let (_, rec1, report1) = run_recorded(
        CpuBackend::new(Transformer::new(weights())),
        serve_cfg(),
        &lcfg,
    );
    let (_, rec2, report2) = run_recorded(
        CpuBackend::new(Transformer::new(weights())),
        serve_cfg(),
        &lcfg,
    );
    assert_eq!(report1, report2);
    assert_eq!(rec1.events.to_jsonl(), rec2.events.to_jsonl());
    assert_eq!(rec1.ticks.to_csv(), rec2.ticks.to_csv());
    assert_eq!(rec1.ticks.to_jsonl(), rec2.ticks.to_jsonl());
    let chrome = |rec: &ServeRecorder| {
        let mut t = tel::export::ChromeTrace::new();
        events_to_chrome(rec.events.events(), &mut t);
        t.finish()
    };
    assert_eq!(chrome(&rec1), chrome(&rec2));
    let opts = AnalyzeOptions::default();
    let a1 = render_analysis(rec1.events.events(), &opts);
    let a2 = render_analysis(rec2.events.events(), &opts);
    assert_eq!(a1, a2);
    assert!(a1.contains("phase breakdown"));
    assert!(a1.contains("10 requests (10 completed"));

    // The JSONL round-trips through the parser into the same breakdowns.
    let parsed = speedllm::serve::parse_events_jsonl(&rec1.events.to_jsonl()).expect("parse");
    assert_eq!(
        phase_breakdowns(&parsed),
        phase_breakdowns(rec1.events.events())
    );
}
