//! Property tests (speedllm-testkit) over the paged KV-cache subsystem:
//! free-list conservation under random alloc/free interleavings, refcount
//! correctness under fork/release interleavings, radix-tree invariants
//! (lookup of an inserted prefix returns exactly its blocks; shared
//! blocks stay pinned while referenced), and copy-on-write isolation.

use speedllm_testkit::prelude::*;

use speedllm::llama::config::ModelConfig;
use speedllm::llama::rng::Xoshiro256;
use speedllm::pagedkv::{BlockAllocator, BlockConfig, BlockTable, PagedKvArena, RadixIndex};

fn cfg(block_size: usize, n_blocks: usize) -> BlockConfig {
    BlockConfig {
        block_size,
        n_blocks,
    }
}

/// Tokens 3.. in a deterministic stream, `len` of them.
fn tokens(rng: &mut Xoshiro256, len: usize) -> Vec<u32> {
    (0..len).map(|_| 3 + rng.below(61) as u32).collect()
}

props! {
    #![config(cases = 64)]

    fn free_list_conserves_blocks_under_random_churn(
        block_size in 1usize..9,
        n_blocks in 1usize..33,
        steps in 1usize..200,
        seed in any_u64(),
    ) {
        let mut alloc = BlockAllocator::new(cfg(block_size, n_blocks));
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut held = Vec::new();
        for _ in 0..steps {
            if rng.below(2) == 0 {
                if let Some(b) = alloc.alloc() {
                    // No double-hand-out: a granted block is never one we
                    // already hold.
                    prop_assert!(
                        !held.contains(&b),
                        "block {:?} handed out twice", b
                    );
                    held.push(b);
                } else {
                    prop_assert_eq!(held.len(), n_blocks, "dry arena but blocks unaccounted");
                }
            } else if !held.is_empty() {
                let i = rng.below(held.len() as u64) as usize;
                let b = held.swap_remove(i);
                prop_assert!(alloc.release(b), "sole owner's release must free");
            }
            // Conservation: allocated + free == total, free list exact.
            prop_assert_eq!(alloc.in_use() + alloc.free_blocks(), n_blocks);
            prop_assert_eq!(alloc.in_use(), held.len());
            prop_assert!(alloc.check_invariants().is_ok());
        }
        for b in held {
            prop_assert!(alloc.release(b));
        }
        prop_assert_eq!(alloc.free_blocks(), n_blocks, "everything must drain");
        prop_assert!(alloc.check_invariants().is_ok());
    }

    fn refcounts_survive_fork_release_interleavings(
        block_size in 1usize..5,
        chains in 1usize..5,
        forks in 0usize..8,
        seed in any_u64(),
    ) {
        let n_blocks = 64;
        let mut alloc = BlockAllocator::new(cfg(block_size, n_blocks));
        let mut rng = Xoshiro256::seed_from_u64(seed);
        // Base tables with 1..=3 blocks each, then random forks of random
        // tables — every fork bumps each chain block's refcount by one.
        let mut tables: Vec<BlockTable> = Vec::new();
        for _ in 0..chains {
            let mut t = BlockTable::new(block_size);
            for _ in 0..1 + rng.below(3) {
                t.push_block(alloc.alloc().expect("64 blocks is plenty"));
            }
            tables.push(t);
        }
        for _ in 0..forks {
            let src = rng.below(tables.len() as u64) as usize;
            let forked = alloc.fork(&tables[src]);
            prop_assert_eq!(forked.blocks(), tables[src].blocks());
            for &b in forked.blocks() {
                prop_assert!(alloc.refcount(b) >= 2, "forked block not shared");
            }
            tables.push(forked);
            prop_assert!(alloc.check_invariants().is_ok());
        }
        // Release tables in random order; a block frees exactly when its
        // last referencing table lets go.
        while !tables.is_empty() {
            let i = rng.below(tables.len() as u64) as usize;
            let mut t = tables.swap_remove(i);
            for b in t.take_blocks() {
                let before = alloc.refcount(b);
                let freed = alloc.release(b);
                prop_assert_eq!(freed, before == 1, "freed iff last reference");
            }
            prop_assert!(alloc.check_invariants().is_ok());
        }
        prop_assert_eq!(alloc.free_blocks(), n_blocks, "refcount leak");
    }

    fn radix_lookup_returns_exactly_the_inserted_prefix(
        block_size in 1usize..5,
        blocks_len in 1usize..6,
        seed in any_u64(),
    ) {
        let n_blocks = 64;
        let mut alloc = BlockAllocator::new(cfg(block_size, n_blocks));
        let mut radix = RadixIndex::new(block_size);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let toks = tokens(&mut rng, blocks_len * block_size);
        let chain: Vec<_> = (0..blocks_len)
            .map(|_| alloc.alloc().expect("plenty of blocks"))
            .collect();
        radix.insert(&toks, &chain, &mut alloc);
        prop_assert!(radix.check_invariants(&alloc).is_ok());

        // Exact-prefix lookup returns the chain, in order, truncated at
        // the requested cap.
        let hit = radix.lookup(&toks, toks.len());
        prop_assert_eq!(&hit, &chain, "full lookup must return the chain");
        let cap = rng.below(toks.len() as u64 + 1) as usize;
        let hit = radix.lookup(&toks, cap);
        prop_assert_eq!(&hit[..], &chain[..cap / block_size], "capped lookup");

        // A diverging query shares only the common full-block prefix.
        let mut other = toks.clone();
        let flip = rng.below(other.len() as u64) as usize;
        other[flip] = if other[flip] == 3 { 4 } else { 3 };
        let hit = radix.lookup(&other, other.len());
        prop_assert_eq!(&hit[..], &chain[..flip / block_size], "divergence point");

        // The sequence lets go; cached blocks stay alive (tree retained
        // them), and eviction reclaims every one of them.
        for b in chain {
            prop_assert!(!alloc.release(b), "tree must keep cached blocks alive");
        }
        let evicted = radix.evict(usize::MAX, &mut alloc);
        prop_assert_eq!(evicted.len(), blocks_len, "evict must drain the tree");
        prop_assert!(radix.check_invariants(&alloc).is_ok());
        prop_assert_eq!(alloc.free_blocks(), n_blocks);
    }

    fn radix_shared_blocks_are_counted_once_per_owner(
        block_size in 1usize..5,
        shared_blocks in 1usize..4,
        seed in any_u64(),
    ) {
        let n_blocks = 64;
        let mut alloc = BlockAllocator::new(cfg(block_size, n_blocks));
        let mut radix = RadixIndex::new(block_size);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let prefix = tokens(&mut rng, shared_blocks * block_size);

        // Sequence A prefills the prefix plus one private block.
        let mut a_toks = prefix.clone();
        a_toks.extend(tokens(&mut rng, block_size));
        let a_chain: Vec<_> = (0..shared_blocks + 1)
            .map(|_| alloc.alloc().unwrap())
            .collect();
        radix.insert(&a_toks, &a_chain, &mut alloc);

        // Sequence B shares the prefix: lookup + retain, as admission does.
        let hit = radix.lookup(&prefix, prefix.len());
        prop_assert_eq!(&hit[..], &a_chain[..shared_blocks]);
        for &b in &hit {
            alloc.retain(b);
            // Owners: sequence A, the tree, sequence B.
            prop_assert_eq!(alloc.refcount(b), 3, "one count per owner");
        }
        prop_assert!(radix.check_invariants(&alloc).is_ok());

        // While B still references the shared blocks, eviction must not
        // touch them even under maximal pressure.
        let evicted = radix.evict(usize::MAX, &mut alloc);
        prop_assert!(
            !evicted.iter().any(|b| hit.contains(b)),
            "evicted a pinned shared block"
        );

        // Unwind: A, then B, then whatever is left cached.
        for b in a_chain {
            alloc.release(b);
        }
        for b in hit {
            alloc.release(b);
        }
        radix.evict(usize::MAX, &mut alloc);
        prop_assert!(radix.check_invariants(&alloc).is_ok());
        prop_assert_eq!(alloc.free_blocks(), n_blocks, "shared blocks leaked");
    }

    /// Speculative-decoding rollback over forked (CoW-shared) chains: a
    /// child forks the parent, writes on past a block boundary, then
    /// rolls back to a random keep point. Popped blocks must free exactly
    /// when the child was their last owner (free-list conservation), and
    /// the parent's bytes — plus the child's surviving rows — must equal
    /// those of an arena that never saw the speculative writes.
    fn rollback_after_fork_conserves_blocks_and_bytes(
        block_size in 1usize..5,
        parent_blocks in 1usize..4,
        grow in 1usize..9,
        seed in any_u64(),
    ) {
        let model = ModelConfig::test_tiny();
        let n_blocks = 32;
        let bc = cfg(block_size, n_blocks);
        let mut alloc = BlockAllocator::new(bc);
        let mut arena = PagedKvArena::new(&model, bc);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let kv_dim = 8; // test_tiny: 2 kv heads x head_dim 4
        let layers = model.n_layers;
        let row = |rng: &mut Xoshiro256| -> Vec<f32> {
            (0..kv_dim).map(|_| rng.next_f32()).collect()
        };

        // Parent prefills `parent_blocks` full blocks of distinctive rows.
        let parent_len = parent_blocks * block_size;
        let mut parent = BlockTable::new(block_size);
        let mut written = Vec::new();
        for pos in 0..parent_len {
            if parent.capacity_tokens() <= pos {
                parent.push_block(alloc.alloc().unwrap());
            }
            let (k, v) = (row(&mut rng), row(&mut rng));
            for layer in 0..layers {
                let (b, s) = parent.locate(pos);
                arena.store_at(layer, b, s, &k, &v);
            }
            parent.note_stored(pos);
            written.push((k, v));
        }
        let baseline: Vec<Vec<f32>> = (0..parent_len)
            .map(|pos| {
                let (b, s) = parent.locate(pos);
                let _ = s;
                arena.key_head_at(0, b, pos % block_size, 0).to_vec()
            })
            .collect();

        // Child forks, then speculates `grow` positions further — crossing
        // at least one block boundary when grow > block_size — writing
        // through CoW so the shared tail block gets a private copy first.
        let mut child = alloc.fork(&parent);
        let spec_end = parent_len + grow;
        for pos in parent_len..spec_end {
            if child.capacity_tokens() <= pos {
                child.push_block(alloc.alloc().expect("32 blocks is plenty"));
            }
            arena.make_writable(&mut alloc, &mut child, pos);
            let (k, v) = (row(&mut rng), row(&mut rng));
            for layer in 0..layers {
                let (b, s) = child.locate(pos);
                arena.store_at(layer, b, s, &k, &v);
            }
            child.note_stored(pos);
        }
        let in_use_before = alloc.in_use();
        prop_assert!(alloc.check_invariants().is_ok());

        // Roll the child back to a random keep point at or past the fork.
        let keep = parent_len + rng.below(grow as u64 + 1) as usize;
        let popped = child.rollback(keep);
        prop_assert_eq!(child.len(), keep, "rollback must set the logical length");
        prop_assert!(
            child.capacity_tokens() >= keep,
            "rollback must keep whole blocks covering the kept context"
        );
        let mut freed = 0;
        for b in popped {
            if alloc.release(b) {
                freed += 1;
            }
        }
        // Conservation: exactly the freed blocks left `in_use`.
        prop_assert_eq!(alloc.in_use(), in_use_before - freed);
        prop_assert_eq!(alloc.in_use() + alloc.free_blocks(), n_blocks);
        prop_assert!(alloc.check_invariants().is_ok());

        // Byte oracle: the parent's rows are untouched by the child's
        // speculative writes and rollback (CoW isolation + rollback only
        // ever pops the child's own chain).
        for (pos, want) in baseline.iter().enumerate() {
            let (b, _) = parent.locate(pos);
            prop_assert_eq!(
                arena.key_head_at(0, b, pos % block_size, 0),
                &want[..],
                "parent bytes changed at pos {}", pos
            );
        }
        // And the child's kept rows still carry what was written to them.
        for pos in 0..keep.min(parent_len) {
            let (b, s) = child.locate(pos);
            let got: Vec<f32> = (0..model.n_kv_heads)
                .flat_map(|h| arena.key_head_at(0, b, s, h).to_vec())
                .collect();
            prop_assert_eq!(&got, &written[pos].0, "kept child row {} corrupted", pos);
        }

        for b in parent.take_blocks() {
            alloc.release(b);
        }
        for b in child.take_blocks() {
            alloc.release(b);
        }
        prop_assert_eq!(alloc.free_blocks(), n_blocks, "unwind must drain everything");
    }

    fn copy_on_write_isolates_forked_sequences(
        seed in any_u64(),
    ) {
        let model = ModelConfig::test_tiny();
        let bc = cfg(4, 16);
        let mut alloc = BlockAllocator::new(bc);
        let mut arena = PagedKvArena::new(&model, bc);
        let mut rng = Xoshiro256::seed_from_u64(seed);

        // Parent writes one full block of distinctive rows.
        let mut parent = BlockTable::new(bc.block_size);
        parent.push_block(alloc.alloc().unwrap());
        let kv_dim = 8; // test_tiny: 2 kv heads x head_dim 4
        for pos in 0..bc.block_size {
            let k: Vec<f32> = (0..kv_dim).map(|_| rng.next_f32()).collect();
            let v: Vec<f32> = (0..kv_dim).map(|_| rng.next_f32()).collect();
            for layer in 0..2 {
                let (b, s) = parent.locate(pos);
                arena.store_at(layer, b, s, &k, &v);
            }
            parent.note_stored(pos);
        }
        let parent_row: Vec<f32> = {
            let (b, _) = parent.locate(0);
            arena.key_head_at(0, b, 0, 0).to_vec()
        };

        // Fork, then write position 0 through the child: CoW must give the
        // child a private block and leave the parent's bytes untouched.
        let mut child = alloc.fork(&parent);
        prop_assert!(arena.make_writable(&mut alloc, &mut child, 0));
        prop_assert!(parent.blocks()[0] != child.blocks()[0], "no private copy");
        let zeros = vec![0.0f32; kv_dim];
        let (cb, cs) = child.locate(0);
        arena.store_at(0, cb, cs, &zeros, &zeros);
        let (pb, _) = parent.locate(0);
        prop_assert_eq!(
            arena.key_head_at(0, pb, 0, 0),
            &parent_row[..],
            "child write leaked into the parent block"
        );
        prop_assert!(alloc.check_invariants().is_ok());

        for b in parent.take_blocks() {
            alloc.release(b);
        }
        for b in child.take_blocks() {
            alloc.release(b);
        }
        prop_assert_eq!(alloc.free_blocks(), bc.n_blocks);
    }
}
