//! Shape assertions for the paper's headline claims (DESIGN.md §4): the
//! exact ratios live in EXPERIMENTS.md; these tests pin the *orderings and
//! magnitudes* so regressions in the cost model are caught.

use speedllm::accel::opt::OptConfig;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::sampler::SamplerKind;

fn run(
    cfg: ModelConfig,
    opt: OptConfig,
    prompt: &str,
    gen: usize,
) -> speedllm::accel::InferenceReport {
    let sys = AcceleratedLlm::synthetic(cfg, 42, opt).unwrap();
    let mut s = sys.session(SamplerKind::Argmax, 0);
    s.generate(prompt, gen).unwrap()
}

#[test]
fn fig2a_speedup_is_in_the_papers_regime() {
    // Paper: up to 4.8x latency speedup on the deployed stories15M.
    let cfg = ModelConfig::stories15m();
    let ours = run(cfg, OptConfig::full(), "Once upon a time", 8);
    let unopt = run(cfg, OptConfig::unoptimized(), "Once upon a time", 8);
    assert_eq!(ours.output.generated_tokens, unopt.output.generated_tokens);
    let speedup = unopt.total_latency_s() / ours.total_latency_s();
    assert!(
        (3.5..6.5).contains(&speedup),
        "speedup {speedup:.2}x outside the paper's regime (~4.8x)"
    );
}

/// The speedup the seed cost model measures for Fig 2(a)'s configuration
/// (stories15M, "Once upon a time", 8 generated tokens): 4.998x. The
/// simulator is deterministic, so this is a hard regression floor — cost
/// model changes that erode the fused+pipelined advantage fail here.
const SEED_MEASURED_SPEEDUP: f64 = 4.99;

#[test]
fn fig2a_speedup_never_regresses_below_seed_measurement() {
    let cfg = ModelConfig::stories15m();
    let ours = run(cfg, OptConfig::full(), "Once upon a time", 8);
    let unopt = run(cfg, OptConfig::unoptimized(), "Once upon a time", 8);
    let speedup = unopt.total_latency_s() / ours.total_latency_s();
    assert!(
        speedup >= SEED_MEASURED_SPEEDUP,
        "fused+pipelined vs unoptimized speedup regressed: {speedup:.3}x < {SEED_MEASURED_SPEEDUP}x"
    );
}

#[test]
fn fig2b_energy_ablation_ordering_holds() {
    // Total energy for the same generated tokens must strictly decrease
    // along the ablation chain: unoptimized > no-parallel > no-fusion >
    // full. (Fusion saves more energy than pipelining here — pipelining
    // mostly hides latency — so no-fusion sits closest to full.)
    let cfg = ModelConfig::stories15m();
    let prompt = "Once upon a time";
    let gen = 8;
    let full = run(cfg, OptConfig::full(), prompt, gen);
    let no_fuse = run(cfg, OptConfig::no_fuse(), prompt, gen);
    let no_par = run(cfg, OptConfig::no_parallel(), prompt, gen);
    let unopt = run(cfg, OptConfig::unoptimized(), prompt, gen);
    for v in [&no_fuse, &no_par, &unopt] {
        assert_eq!(v.output.generated_tokens, full.output.generated_tokens);
    }
    let (e_full, e_no_fuse, e_no_par, e_unopt) = (
        full.energy.total_j(),
        no_fuse.energy.total_j(),
        no_par.energy.total_j(),
        unopt.energy.total_j(),
    );
    assert!(
        e_unopt > e_no_par,
        "unopt {e_unopt} <= no-parallel {e_no_par}"
    );
    assert!(
        e_no_par > e_no_fuse,
        "no-parallel {e_no_par} <= no-fusion {e_no_fuse}"
    );
    assert!(e_no_fuse > e_full, "no-fusion {e_no_fuse} <= full {e_full}");
}

#[test]
fn fig2b_energy_efficiency_ordering_and_ratios() {
    let cfg = ModelConfig::stories15m();
    let prompt = "Once upon a time";
    let gen = 8;
    let ours = run(cfg, OptConfig::full(), prompt, gen);
    let no_fuse = run(cfg, OptConfig::no_fuse(), prompt, gen);
    let no_par = run(cfg, OptConfig::no_parallel(), prompt, gen);
    let unopt = run(cfg, OptConfig::unoptimized(), prompt, gen);

    let e_ours = ours.tokens_per_joule();
    let e_no_fuse = no_fuse.tokens_per_joule();
    let e_no_par = no_par.tokens_per_joule();
    let e_unopt = unopt.tokens_per_joule();

    // Ordering: ours >= no-fuse > no-parallel > unoptimized.
    assert!(e_ours >= e_no_fuse, "{e_ours} vs {e_no_fuse}");
    assert!(e_no_fuse > e_no_par, "{e_no_fuse} vs {e_no_par}");
    assert!(e_no_par > e_unopt, "{e_no_par} vs {e_unopt}");

    // Paper ratios: 1.01x vs no-fuse (small), 1.18x vs unoptimized.
    let vs_no_fuse = e_ours / e_no_fuse;
    let vs_unopt = e_ours / e_unopt;
    assert!(
        (1.0..1.1).contains(&vs_no_fuse),
        "vs no-fuse {vs_no_fuse:.3}"
    );
    assert!(
        (1.05..1.4).contains(&vs_unopt),
        "vs unoptimized {vs_unopt:.3}"
    );
}

#[test]
fn cost_efficiency_u280_beats_paper_gpus() {
    use speedllm_gpu_model::{GpuSpec, U280_PRICE_USD};
    let cfg = ModelConfig::stories15m();
    let ours = run(cfg, OptConfig::full(), "Once upon a time", 8);
    let fpga = ours.decode_tokens_per_s() / U280_PRICE_USD;
    for gpu in GpuSpec::paper_gpus() {
        let g = gpu.tokens_per_s_per_dollar(&cfg, 16, 2.0);
        assert!(
            fpga > g,
            "{} beats the U280 on tokens/s/$: {g:.3} vs {fpga:.3}",
            gpu.name
        );
    }
}

#[test]
fn traffic_decomposition_matches_the_papers_mechanisms() {
    let cfg = ModelConfig::stories260k();
    let prompt = "abc";
    let gen = 4;
    let ours = run(cfg, OptConfig::full(), prompt, gen);
    let no_reuse = run(cfg, OptConfig::no_reuse(), prompt, gen);
    let unopt = run(cfg, OptConfig::unoptimized(), prompt, gen);

    // Fusion + reuse kill activation round-trips: ours writes only the KV
    // stream; the naive design writes activations too.
    assert!(no_reuse.stats.hbm.write_bytes > 2 * ours.stats.hbm.write_bytes);
    // Reuse eliminates allocation stalls entirely.
    assert_eq!(ours.stats.alloc_stalls, 0);
    assert!(unopt.stats.alloc_stalls > 0);
    // Fusion cuts kernel launches by >2x.
    assert!(unopt.stats.kernel_launches > 2 * ours.stats.kernel_launches);
    // Weight traffic itself is invariant across variants (same model).
    let w_ours = ours.stats.hbm.read_bytes;
    let w_unopt = unopt.stats.hbm.read_bytes;
    let ratio = w_unopt as f64 / w_ours as f64;
    assert!((0.95..1.2).contains(&ratio), "read traffic ratio {ratio}");
}

#[test]
fn throughput_claims_are_self_consistent() {
    let cfg = ModelConfig::stories260k();
    let r = run(cfg, OptConfig::full(), "hello world", 16);
    let decode_s = r.clock.to_seconds(r.decode_cycles);
    let tput = r.output.generated_tokens.len() as f64 / decode_s;
    assert!((tput - r.decode_tokens_per_s()).abs() < 1e-6);
    // Energy and power consistency: E = P * t.
    let t = r.clock.to_seconds(r.stats.total_cycles);
    assert!((r.avg_power_w() * t - r.energy.total_j()).abs() < 1e-9);
}

#[test]
fn speedup_grows_then_saturates_across_model_sizes() {
    // The paper's "up to" phrasing: speedup varies by workload. Check the
    // two ends we can afford in tests: 260K (launch-bound, large speedup)
    // vs 15M (bandwidth-bound, ~4.8x).
    let small_ours = run(ModelConfig::stories260k(), OptConfig::full(), "a", 4);
    let small_unopt = run(ModelConfig::stories260k(), OptConfig::unoptimized(), "a", 4);
    let s_small = small_unopt.total_latency_s() / small_ours.total_latency_s();
    let big_ours = run(ModelConfig::stories15m(), OptConfig::full(), "a", 4);
    let big_unopt = run(ModelConfig::stories15m(), OptConfig::unoptimized(), "a", 4);
    let s_big = big_unopt.total_latency_s() / big_ours.total_latency_s();
    assert!(
        s_small > s_big,
        "launch-bound regime must show larger speedup"
    );
    assert!(s_big > 3.0, "bandwidth-bound regime speedup {s_big}");
}
