//! Property tests (speedllm-testkit) over the cluster router: for random
//! workloads × routing policies × replica counts × fault plans, every
//! request completes exactly once, no routing decision ever targets a
//! downed replica, faulted runs emit token streams bit-identical to
//! no-fault runs, round-robin rotation is deterministic, and the cluster
//! report renders byte-identical across double runs.

use speedllm_testkit::prelude::*;

use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::rng::Xoshiro256;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::tokenizer::TOKEN_BOS;
use speedllm::llama::weights::TransformerWeights;
use speedllm::pagedkv::BlockConfig;
use speedllm::router::{Cluster, ClusterConfig, FaultPlan, Policy, RouteReason};
use speedllm::serve::{CpuBackend, Request, ServeConfig, ServeEngine, TrafficSource};

/// A pre-generated arrival list as a [`TrafficSource`]: deterministic
/// cluster-tick arrivals, independent of router behavior.
struct ListSource {
    pending: std::collections::VecDeque<Request>,
}

impl ListSource {
    fn new(mut reqs: Vec<Request>) -> Self {
        reqs.sort_by_key(|r| (r.arrival, r.id));
        Self {
            pending: reqs.into(),
        }
    }
}

impl TrafficSource for ListSource {
    fn poll(&mut self, now: u64, _outstanding: usize, room: usize) -> Vec<Request> {
        let mut due = Vec::new();
        while due.len() < room {
            if self.pending.front().map_or(true, |r| r.arrival > now) {
                break;
            }
            due.push(self.pending.pop_front().expect("checked above"));
        }
        due
    }

    fn next_arrival(&self, _outstanding: usize) -> Option<u64> {
        self.pending.front().map(|r| r.arrival)
    }

    fn is_exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Identical paged CPU replicas (same synthetic weights, so any replica
/// serves any request identically — the cluster analogue of identical
/// devices behind a load balancer).
fn replicas(n: usize) -> Vec<ServeEngine<CpuBackend>> {
    let cfg = ModelConfig::test_tiny();
    (0..n)
        .map(|_| {
            let model = Transformer::new(TransformerWeights::synthetic(cfg, 42));
            let bc = BlockConfig {
                block_size: 2,
                n_blocks: 2 * cfg.seq_len.div_ceil(2),
            };
            ServeEngine::new(
                CpuBackend::new_paged(model, bc),
                ServeConfig {
                    slots: bc.n_blocks,
                    max_batch: 4,
                    prefill_chunk: 4,
                    queue_cap: 64,
                    unified: None,
                },
            )
        })
        .collect()
}

/// A random workload with spread-out arrivals; about half the prompts
/// share a 4-token prefix so the radix caches (and the prefix policy)
/// have something to hit. Greedy when `greedy`, else per-request seeded
/// temperature sampling.
fn workload(seed: u64, n: usize, greedy: bool) -> Vec<Request> {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let shared: Vec<u32> = (0..3)
        .map(|_| 3 + rng.below(cfg.vocab_size as u64 - 3) as u32)
        .collect();
    (0..n as u64)
        .map(|id| {
            let mut prompt = vec![TOKEN_BOS];
            if rng.below(2) == 0 {
                prompt.extend_from_slice(&shared);
            }
            let extra = 1 + rng.below(3) as usize;
            for _ in 0..extra {
                prompt.push(3 + rng.below(cfg.vocab_size as u64 - 3) as u32);
            }
            Request {
                id,
                prompt,
                max_new_tokens: rng.below(6) as usize,
                stop_at_eos: true,
                sampler: if greedy {
                    SamplerKind::Argmax
                } else {
                    SamplerKind::Temperature(0.8)
                },
                seed: rng.next_u64(),
                arrival: rng.below(24),
            }
        })
        .collect()
}

fn policy_of(k: u64) -> Policy {
    match k % 3 {
        0 => Policy::Prefix,
        1 => Policy::LeastLoaded,
        _ => Policy::RoundRobin,
    }
}

/// Builds, runs, and returns the cluster for one configuration.
fn run_cluster(
    n_replicas: usize,
    policy: Policy,
    faults: Vec<FaultPlan>,
    cap: usize,
    seed: u64,
    n: usize,
    greedy: bool,
) -> Cluster<CpuBackend> {
    let mut cluster = Cluster::new(
        replicas(n_replicas),
        ClusterConfig {
            policy,
            max_outstanding_tokens: cap,
            faults,
        },
    );
    let mut source = ListSource::new(workload(seed, n, greedy));
    cluster.run(&mut source);
    cluster
}

props! {
    #![config(cases = 64)]

    fn exactly_once_across_policies_replicas_and_faults(
        n in 1usize..10,
        n_replicas in 1usize..5,
        policy_k in any_u64(),
        seed in any_u64(),
        with_fault in any_bool(),
    ) {
        let policy = policy_of(policy_k);
        // A fault window over a random replica; single-replica clusters
        // get a finite outage (the cluster must be servable again).
        let faults = if with_fault {
            let down = 2 + seed % 20;
            let replica = (seed >> 8) as usize % n_replicas;
            if n_replicas == 1 {
                vec![FaultPlan { replica, down_tick: down, up_tick: down + 6 }]
            } else {
                vec![FaultPlan::down_forever(replica, down)]
            }
        } else {
            Vec::new()
        };
        let cluster = run_cluster(n_replicas, policy, faults.clone(), usize::MAX, seed, n, false);
        let mut ids: Vec<u64> = cluster.completions().iter().map(|c| c.completion.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids.len(), n, "a request was lost or duplicated");
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(*id, i as u64, "ids must cover 0..n exactly once");
        }
        // No routing decision may target a replica inside its outage.
        for d in cluster.decisions() {
            for f in &faults {
                let downed = usize::from(d.replica) == f.replica
                    && d.tick >= f.down_tick
                    && d.tick < f.up_tick;
                prop_assert!(!downed, "req {} routed to downed replica {} at tick {}",
                    d.req, d.replica, d.tick);
            }
        }
        // Completions never come from a replica while it is down either.
        for c in cluster.completions() {
            for f in &faults {
                let downed = usize::from(c.replica) == f.replica
                    && c.finished >= f.down_tick
                    && c.finished < f.up_tick;
                prop_assert!(!downed, "req {} completed on downed replica", c.completion.id);
            }
        }
    }

    fn faulted_streams_match_the_no_fault_oracle(
        n in 2usize..9,
        n_replicas in 2usize..5,
        policy_k in any_u64(),
        seed in any_u64(),
    ) {
        let policy = policy_of(policy_k);
        let down = 2 + seed % 16;
        let fault = FaultPlan::down_forever((seed >> 8) as usize % n_replicas, down);
        // Greedy sampling per the acceptance bar; the equivalence in fact
        // holds for any per-request seeded sampler.
        let faulted = run_cluster(n_replicas, policy, vec![fault], usize::MAX, seed, n, true);
        let oracle = run_cluster(n_replicas, policy, Vec::new(), usize::MAX, seed, n, true);
        let streams = |c: &Cluster<CpuBackend>| {
            let mut v: Vec<(u64, Vec<u32>)> = c
                .completions()
                .iter()
                .map(|c| (c.completion.id, c.completion.tokens.clone()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        prop_assert_eq!(streams(&faulted), streams(&oracle),
            "failover changed a token stream");
        // Nothing completes on the dead replica after its outage starts.
        for c in faulted.completions() {
            prop_assert!(
                usize::from(c.replica) != fault.replica || c.finished < down,
                "req {} completed on the dead replica", c.completion.id
            );
        }
    }

    fn double_runs_render_byte_identical_reports(
        n in 1usize..8,
        n_replicas in 1usize..4,
        policy_k in any_u64(),
        seed in any_u64(),
        cap in 12usize..64,
    ) {
        let policy = policy_of(policy_k);
        let a = run_cluster(n_replicas, policy, Vec::new(), cap, seed, n, false);
        let b = run_cluster(n_replicas, policy, Vec::new(), cap, seed, n, false);
        prop_assert_eq!(a.report().render(), b.report().render(),
            "cluster report must be byte-identical run to run");
        // Round-robin rotation must replay the exact same decision
        // sequence (and actually rotate when several replicas exist).
        if policy == Policy::RoundRobin {
            let seq = |c: &Cluster<CpuBackend>| -> Vec<(u64, u16)> {
                c.decisions().iter().map(|d| (d.req, d.replica)).collect()
            };
            prop_assert_eq!(seq(&a), seq(&b), "round-robin decisions must be deterministic");
            for d in a.decisions() {
                prop_assert!(matches!(d.reason, RouteReason::RoundRobin));
            }
        }
    }
}

#[test]
fn prefix_policy_routes_shared_prefixes_to_the_warm_replica() {
    // One warm replica: a long shared prefix, requests trickling in so
    // earlier completions populate the radix cache before later
    // placements are decided.
    let cfg = ModelConfig::test_tiny();
    let mut rng = Xoshiro256::seed_from_u64(7);
    let shared: Vec<u32> = (0..6)
        .map(|_| 3 + rng.below(cfg.vocab_size as u64 - 3) as u32)
        .collect();
    let reqs: Vec<Request> = (0..6u64)
        .map(|id| {
            let mut prompt = vec![TOKEN_BOS];
            prompt.extend_from_slice(&shared);
            prompt.push(3 + rng.below(cfg.vocab_size as u64 - 3) as u32);
            Request {
                id,
                prompt,
                max_new_tokens: 3,
                stop_at_eos: true,
                sampler: SamplerKind::Argmax,
                seed: 11 + id,
                arrival: id * 40, // strictly serial: each sees the last one's cache
            }
        })
        .collect();
    let mut cluster = Cluster::new(
        replicas(3),
        ClusterConfig {
            policy: Policy::Prefix,
            ..ClusterConfig::default()
        },
    );
    let mut source = ListSource::new(reqs);
    cluster.run(&mut source);
    assert_eq!(cluster.completions().len(), 6);
    let stats = cluster.router_stats();
    assert!(
        stats.routed_prefix >= 4,
        "later requests should chase the warm cache (prefix decisions: {})",
        stats.routed_prefix
    );
    // Every post-warmup placement should land on the same replica.
    let homes: Vec<u16> = cluster.decisions().iter().map(|d| d.replica).collect();
    assert!(
        homes[1..].iter().all(|&r| r == homes[0]),
        "shared-prefix requests scattered: {homes:?}"
    );
    assert!(stats.prefix_hit_tokens_at_placement > 0);
}

#[test]
fn merged_event_log_carries_replica_stamps_and_analyzes() {
    let mut cluster = Cluster::new(
        replicas(2),
        ClusterConfig {
            policy: Policy::RoundRobin,
            ..ClusterConfig::default()
        },
    );
    cluster.attach_recorders();
    let mut source = ListSource::new(workload(99, 6, true));
    cluster.run(&mut source);
    let events = cluster.take_events();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.replica.is_some()));
    let used: std::collections::BTreeSet<u16> = events.iter().filter_map(|e| e.replica).collect();
    assert!(used.len() >= 2, "round-robin over 2 replicas must use both");
    let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let parsed = speedllm::serve::parse_events_jsonl(&jsonl).unwrap();
    assert_eq!(
        parsed, events,
        "replica stamps must round-trip through JSONL"
    );
    let text =
        speedllm::serve::render_analysis(&parsed, &speedllm::serve::AnalyzeOptions::default());
    assert!(text.contains("phase breakdown by replica"));
    assert!(text.contains("replica 0 —"));
    assert!(text.contains("replica 1 —"));
}
