//! Determinism guarantees: every stochastic component is seeded, so whole
//! systems — weights, vocabulary, sampling, simulated timing, energy — are
//! bit-reproducible across construction sites and sessions.

use speedllm::accel::opt::OptConfig;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::sampler::SamplerKind;

#[test]
fn identical_seeds_reproduce_everything() {
    let cfg = ModelConfig::test_tiny();
    let mk = || AcceleratedLlm::synthetic(cfg, 1234, OptConfig::full()).unwrap();
    let ra = mk()
        .session(
            SamplerKind::TopP {
                temperature: 0.8,
                p: 0.9,
            },
            99,
        )
        .generate("deterministic?", 12)
        .unwrap();
    let rb = mk()
        .session(
            SamplerKind::TopP {
                temperature: 0.8,
                p: 0.9,
            },
            99,
        )
        .generate("deterministic?", 12)
        .unwrap();
    assert_eq!(ra.output.generated_tokens, rb.output.generated_tokens);
    assert_eq!(ra.output.text, rb.output.text);
    assert_eq!(ra.prefill_cycles, rb.prefill_cycles);
    assert_eq!(ra.decode_cycles, rb.decode_cycles);
    assert_eq!(ra.stats, rb.stats);
    assert_eq!(ra.energy.total_j(), rb.energy.total_j());
}

#[test]
fn different_model_seeds_differ() {
    let cfg = ModelConfig::test_tiny();
    let a = AcceleratedLlm::synthetic(cfg, 1, OptConfig::full()).unwrap();
    let b = AcceleratedLlm::synthetic(cfg, 2, OptConfig::full()).unwrap();
    // Different weights must produce different logits on the same input
    // (token sequences could coincide by chance on tiny vocabularies).
    let la = a.session(SamplerKind::Argmax, 0).step(3, 0).logits;
    let lb = b.session(SamplerKind::Argmax, 0).step(3, 0).logits;
    assert_ne!(la, lb, "different weights must yield different logits");
}

#[test]
fn different_sampler_seeds_diverge_under_temperature() {
    let cfg = ModelConfig::test_tiny();
    let sys = AcceleratedLlm::synthetic(cfg, 5, OptConfig::full()).unwrap();
    let ra = sys
        .session(SamplerKind::Temperature(1.4), 1)
        .generate("hi", 16)
        .unwrap();
    let rb = sys
        .session(SamplerKind::Temperature(1.4), 2)
        .generate("hi", 16)
        .unwrap();
    assert_ne!(ra.output.generated_tokens, rb.output.generated_tokens);
}

#[test]
fn sessions_are_independent() {
    // Running one session must not perturb another from the same system.
    let cfg = ModelConfig::test_tiny();
    let sys = AcceleratedLlm::synthetic(cfg, 5, OptConfig::full()).unwrap();
    let solo = sys
        .session(SamplerKind::Argmax, 0)
        .generate("alpha", 8)
        .unwrap();
    let mut s1 = sys.session(SamplerKind::Argmax, 0);
    let mut s2 = sys.session(SamplerKind::Argmax, 0);
    let _ = s2.generate("something completely different", 8).unwrap();
    let interleaved = s1.generate("alpha", 8).unwrap();
    assert_eq!(
        solo.output.generated_tokens,
        interleaved.output.generated_tokens
    );
}

#[test]
fn consecutive_generations_on_one_session_reset_cleanly() {
    let cfg = ModelConfig::test_tiny();
    let sys = AcceleratedLlm::synthetic(cfg, 5, OptConfig::full()).unwrap();
    let mut s = sys.session(SamplerKind::Argmax, 0);
    let a = s.generate("repeat me", 8).unwrap();
    let _ = s.generate("interference", 8).unwrap();
    let b = s.generate("repeat me", 8).unwrap();
    assert_eq!(a.output.generated_tokens, b.output.generated_tokens);
    assert_eq!(a.decode_cycles, b.decode_cycles);
}

#[test]
fn simulated_timing_is_platform_independent() {
    // Cycle counts derive from integer arithmetic only; a fixed seed must
    // give a fixed, exact cycle count. This pins the value so accidental
    // nondeterminism (e.g. HashMap iteration affecting timing) is caught.
    let cfg = ModelConfig::test_tiny();
    let sys = AcceleratedLlm::synthetic(cfg, 1234, OptConfig::full()).unwrap();
    let r1 = sys
        .session(SamplerKind::Argmax, 0)
        .generate("pin", 4)
        .unwrap();
    let r2 = sys
        .session(SamplerKind::Argmax, 0)
        .generate("pin", 4)
        .unwrap();
    assert_eq!(r1.decode_cycles, r2.decode_cycles);
    assert_eq!(r1.per_token_cycles, r2.per_token_cycles);
    assert!(r1.decode_cycles.0 > 0);
}
