//! Property-based tests (speedllm-testkit) over the public API: codec
//! round-trips, quantization error bounds, memory-plan soundness, scheduler
//! laws, and sampler ranges under arbitrary inputs.
//!
//! Every property keeps its original name and 64-case budget from the
//! `proptest` era; runs are reproducible from a fixed seed (override with
//! `TESTKIT_SEED=<u64>` to replay a reported failure).

use speedllm_testkit::prelude::*;

use speedllm::accel::fusion::{fuse, fuse_with_limit};
use speedllm::accel::ir::build_decode_graph;
use speedllm::accel::memplan::{plan, verify_plan};
use speedllm::accel::pipeline::{schedule_kernel, PipelineConfig, TileCost, Unit, N_RESOURCES};
use speedllm::fpga::cycles::Cycles;
use speedllm::fpga::event::Timeline;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::ops;
use speedllm::llama::quant::{QuantTensor, GROUP};
use speedllm::llama::sparse::BlockSparseMatrix;
use speedllm::llama::tokenizer::Tokenizer;

/// Builds a [`SimStats`] from 16 scalars — one per public leaf field. The
/// struct literal is exhaustive (no `..Default::default()`), so adding a
/// field to `SimStats` or its nested counters breaks this helper at compile
/// time, forcing `accumulate` (checked below) to be updated with it.
fn sim_stats_from(v: &[u64; 16]) -> speedllm::fpga::stats::SimStats {
    use speedllm::fpga::hbm::HbmCounters;
    use speedllm::fpga::mpe::MpeCounters;
    use speedllm::fpga::sfu::SfuCounters;
    speedllm::fpga::stats::SimStats {
        total_cycles: Cycles(v[0]),
        hbm: HbmCounters {
            read_bytes: v[1],
            write_bytes: v[2],
            read_transfers: v[3],
            write_transfers: v[4],
        },
        ocm_read_bytes: v[5],
        ocm_write_bytes: v[6],
        mpe: MpeCounters {
            macs: v[7],
            busy_cycles: v[8],
            tiles: v[9],
        },
        sfu: SfuCounters {
            elements: v[10],
            busy_cycles: v[11],
            ops: v[12],
        },
        dma_busy_cycles: v[13],
        kernel_launches: v[14],
        alloc_stalls: v[15],
    }
}

/// Flattens every public leaf field of a [`SimStats`] back into the order
/// used by [`sim_stats_from`]; exhaustive destructuring keeps it honest.
fn sim_stats_fields(s: &speedllm::fpga::stats::SimStats) -> [u64; 16] {
    use speedllm::fpga::hbm::HbmCounters;
    use speedllm::fpga::mpe::MpeCounters;
    use speedllm::fpga::sfu::SfuCounters;
    let speedllm::fpga::stats::SimStats {
        total_cycles,
        hbm:
            HbmCounters {
                read_bytes,
                write_bytes,
                read_transfers,
                write_transfers,
            },
        ocm_read_bytes,
        ocm_write_bytes,
        mpe:
            MpeCounters {
                macs,
                busy_cycles: mpe_busy,
                tiles,
            },
        sfu:
            SfuCounters {
                elements,
                busy_cycles: sfu_busy,
                ops,
            },
        dma_busy_cycles,
        kernel_launches,
        alloc_stalls,
    } = *s;
    [
        total_cycles.0,
        read_bytes,
        write_bytes,
        read_transfers,
        write_transfers,
        ocm_read_bytes,
        ocm_write_bytes,
        macs,
        mpe_busy,
        tiles,
        elements,
        sfu_busy,
        ops,
        dma_busy_cycles,
        kernel_launches,
        alloc_stalls,
    ]
}

props! {
    #![config(cases = 64)]

    fn tokenizer_roundtrips_arbitrary_ascii(text in printable_ascii(0..121)) {
        let t = Tokenizer::synthetic(512, 7);
        let ids = t.encode(&text, true, false);
        prop_assert_eq!(t.decode(&ids), text);
    }

    fn tokenizer_roundtrips_arbitrary_unicode(text in unicode(0..41)) {
        let t = Tokenizer::synthetic(512, 7);
        let ids = t.encode(&text, true, false);
        prop_assert_eq!(t.decode(&ids), text);
    }

    fn quantization_error_is_bounded(values in vec_of(-100.0f32..100.0, 1..300)) {
        let qt = QuantTensor::quantize(&values);
        let back = qt.dequantize();
        let bound = qt.error_bound() + 1e-5;
        for (a, b) in values.iter().zip(&back) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
        // Group scale bound: error <= absmax/254 per group is implied by
        // symmetric 127-step quantization.
        prop_assert!(qt.scales.len() == values.len().div_ceil(GROUP));
    }

    fn softmax_is_a_distribution(values in vec_of(-50.0f32..50.0, 1..200)) {
        let mut x = values;
        ops::softmax(&mut x);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {}", sum);
        prop_assert!(x.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    fn rmsnorm_output_is_finite_and_scaled(values in vec_of(-1000.0f32..1000.0, 4..128)) {
        let gain = vec![1.0f32; values.len()];
        let mut out = vec![0.0f32; values.len()];
        ops::rmsnorm(&mut out, &values, &gain);
        prop_assert!(out.iter().all(|v| v.is_finite()));
        // RMS of output is ~1 when input is non-degenerate.
        let ss: f32 = values.iter().map(|v| v * v).sum();
        if ss / values.len() as f32 > 1e-3 {
            let rms_out: f32 = (out.iter().map(|v| v * v).sum::<f32>() / out.len() as f32).sqrt();
            prop_assert!((rms_out - 1.0).abs() < 0.05, "rms {}", rms_out);
        }
    }

    fn memory_plans_are_sound_for_any_pool_size(
        pool in 64u64..4_000_000,
        fused in any_bool(),
        reuse in any_bool(),
    ) {
        let graph = build_decode_graph(&ModelConfig::test_tiny());
        let schedule = fuse(&graph, fused);
        let p = plan(&graph, &schedule, reuse, pool);
        verify_plan(&graph, &schedule, &p).map_err(TestCaseError::fail)?;
    }

    fn fusion_partitions_for_any_limit(limit in 1usize..12) {
        let graph = build_decode_graph(&ModelConfig::test_tiny());
        let s = fuse_with_limit(&graph, true, limit);
        s.validate(&graph).map_err(TestCaseError::fail)?;
        prop_assert!(s.kernels.iter().all(|k| k.ops.len() <= limit));
        // Total op count is preserved.
        prop_assert_eq!(s.op_count(), graph.ops.len());
    }

    fn streamed_schedule_never_slower_than_sequential(
        tiles in vec_of((0u64..200, 1u64..200, 0u64..100), 1..40),
        depth in 1usize..5,
    ) {
        let tiles: Vec<TileCost> = tiles
            .into_iter()
            .map(|(r, c, w)| TileCost {
                read: Cycles(r),
                compute: Cycles(c),
                write: Cycles(w),
                unit: Unit::Mpe,
            })
            .collect();
        let launch = Cycles(280);
        let streamed_cfg = PipelineConfig { streamed: true, depth, launch, streamed_launch: Cycles(40) };
        let seq_cfg = PipelineConfig { streamed: false, depth, launch, streamed_launch: Cycles(40) };
        let mut tl_s = Timeline::new(N_RESOURCES);
        let mut tl_q = Timeline::new(N_RESOURCES);
        let z = Cycles::ZERO;
        let s = schedule_kernel(&mut tl_s, None, &streamed_cfg, z, z, z, &tiles, "s");
        let q = schedule_kernel(&mut tl_q, None, &seq_cfg, z, z, z, &tiles, "q");
        prop_assert!(s.span.end <= q.span.end, "streamed {:?} > sequential {:?}", s.span.end, q.span.end);
        // And the sequential schedule equals launch + sum of stages.
        let total: u64 = tiles.iter().map(|t| t.read.0 + t.compute.0 + t.write.0).sum();
        prop_assert_eq!(q.span.end, Cycles(launch.0 + total));
    }

    fn sampler_indices_always_in_vocab(
        logits in vec_of(-30.0f32..30.0, 2..100),
        seed in any_u64(),
        temp in 0.1f32..3.0,
        p in 0.05f32..1.0,
    ) {
        use speedllm::llama::sampler::{Sampler, SamplerKind};
        for kind in [
            SamplerKind::Argmax,
            SamplerKind::Temperature(temp),
            SamplerKind::TopP { temperature: temp, p },
        ] {
            let mut s = Sampler::new(kind, seed);
            for _ in 0..8 {
                let id = s.sample(&logits) as usize;
                prop_assert!(id < logits.len());
            }
        }
    }

    fn rope_preserves_norm_for_any_position(
        pos in 0usize..4096,
        head_dim in (1usize..8).prop_map(|x| x * 2),
    ) {
        let n = head_dim * 3;
        let mut v: Vec<f32> = (0..n).map(|i| ((i * 37 + 11) as f32 * 0.1).sin()).collect();
        let norm0: f32 = v.iter().map(|x| x * x).sum();
        ops::rope_inplace(&mut v, pos, head_dim, ops::ROPE_THETA);
        let norm1: f32 = v.iter().map(|x| x * x).sum();
        prop_assert!((norm0 - norm1).abs() < norm0 * 1e-3 + 1e-4);
    }

    fn sparse_matvec_agrees_with_pruned_dense(
        rows in 1usize..20,
        cols in 1usize..50,
        block in 1usize..12,
        sparsity in 0.0f32..0.95,
        seed in any_u64(),
    ) {
        let mut rng = speedllm::llama::rng::Xoshiro256::seed_from_u64(seed);
        let mut w = vec![0.0f32; rows * cols];
        let mut x = vec![0.0f32; cols];
        rng.fill_normal(&mut w, 1.0);
        rng.fill_normal(&mut x, 1.0);
        let m = BlockSparseMatrix::prune(&w, rows, cols, block, sparsity);
        let dense = m.to_dense();
        let mut want = vec![0.0f32; rows];
        ops::matvec(&mut want, &dense, &x, rows, cols);
        let mut got = vec![0.0f32; rows];
        m.matvec(&mut got, &x);
        for (a, b) in want.iter().zip(&got) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
        // Density can only shrink under pruning.
        prop_assert!(m.density() <= 1.0 + 1e-9);
    }

    fn trained_bpe_roundtrips_its_own_corpus_fragments(
        words in vec_of(lowercase(1..7), 5..25),
    ) {
        let corpus = words.join(" ");
        let t = speedllm::llama::bpe_train::train(
            &corpus,
            speedllm::llama::bpe_train::TrainConfig { vocab_size: 300, min_pair_count: 2 },
        );
        let ids = t.encode(&corpus, true, false);
        prop_assert_eq!(t.decode(&ids), corpus);
    }

    fn chunked_prefill_matches_for_any_split(
        split in 1usize..12,
        seed in any_u64(),
    ) {
        use speedllm::accel::engine::Engine;
        use speedllm::accel::opt::OptConfig;
        use std::sync::Arc;
        let cfg = ModelConfig::test_tiny();
        let weights = Arc::new(speedllm::llama::weights::TransformerWeights::synthetic(cfg, 42));
        let tokens: Vec<u32> = (0..12u32).map(|i| (i.wrapping_mul(7).wrapping_add(seed as u32)) % 64).collect();
        let mut reference = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
        let mut last = Vec::new();
        for (pos, &t) in tokens.iter().enumerate() {
            last = reference.decode_step(t, pos).logits;
        }
        let mut chunked = Engine::new(weights, OptConfig::full()).unwrap();
        let mut pos = 0usize;
        let mut got = Vec::new();
        while pos < tokens.len() {
            let end = (pos + split).min(tokens.len());
            got = chunked.prefill_chunk(&tokens[pos..end], pos).logits;
            pos = end;
        }
        for (a, b) in last.iter().zip(&got) {
            prop_assert!((a - b).abs() < 1e-5, "{} vs {}", a, b);
        }
    }

    fn checkpoint_roundtrip_for_random_tiny_architectures(
        n_layers in 1usize..4,
        heads in 1usize..5,
        gqa in 1usize..3,
        dim_mult in 1usize..5,
        seed in any_u64(),
    ) {
        let n_heads = heads * gqa;
        let dim = n_heads * 2 * dim_mult;
        let cfg = ModelConfig {
            dim,
            hidden_dim: dim * 2 + 4,
            n_layers,
            n_heads,
            n_kv_heads: heads,
            vocab_size: 32,
            seq_len: 16,
            shared_classifier: seed % 2 == 0,
        };
        cfg.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let w = speedllm::llama::weights::TransformerWeights::synthetic(cfg, seed);
        let mut buf = Vec::new();
        w.write_to(&mut buf).unwrap();
        let r = speedllm::llama::weights::TransformerWeights::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(w, r);
    }

    fn sim_stats_accumulate_sums_every_public_field(
        a in vec_of(0u64..1_000_000_000, 16..17),
        b in vec_of(0u64..1_000_000_000, 16..17),
    ) {
        let a: [u64; 16] = a.try_into().unwrap();
        let b: [u64; 16] = b.try_into().unwrap();
        let mut acc = sim_stats_from(&a);
        acc.accumulate(&sim_stats_from(&b));
        let got = sim_stats_fields(&acc);
        for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
            prop_assert_eq!(got[i], x + y, "field #{} not summed by accumulate", i);
        }
        // Accumulating the zero stats is the identity.
        let mut id = sim_stats_from(&a);
        id.accumulate(&speedllm::fpga::stats::SimStats::default());
        prop_assert_eq!(sim_stats_fields(&id), a);
    }
}
