//! Property suite for the batched-decode GEMM path (DESIGN.md §13): for
//! random batch sizes, batch compositions (per-sequence context lengths
//! and per-step member permutations), flat and paged KV slots, and both
//! backends, one batched decode step must be **bit-identical** — exact
//! `assert_eq`, no tolerance — to the sequential per-sequence loop. The
//! batched kernels compute every element with the same `dot` over the
//! same operands as `matvec`, so any reassociation or cross-sequence
//! leakage shows up here immediately.

use speedllm_testkit::prelude::*;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::{MatVecStrategy, Transformer};
use speedllm::llama::kv_cache::KvCache;
use speedllm::llama::rng::Xoshiro256;
use speedllm::llama::weights::TransformerWeights;
use speedllm::pagedkv::{BlockAllocator, BlockConfig};
use speedllm::serve::{AccelBackend, Backend, CpuBackend, CpuSlot};
use std::sync::Arc;

const BLOCKS: BlockConfig = BlockConfig {
    block_size: 4,
    n_blocks: 64,
};

fn weights() -> TransformerWeights {
    TransformerWeights::synthetic(ModelConfig::test_tiny(), 42)
}

/// Random per-sequence prompts (1..=5 tokens) for a batch of `n`.
fn prompts(rng: &mut Xoshiro256, n: usize, vocab: u64) -> Vec<Vec<u32>> {
    (0..n)
        .map(|_| {
            let len = 1 + rng.below(5) as usize;
            (0..len).map(|_| rng.below(vocab) as u32).collect()
        })
        .collect()
}

/// Grants enough blocks for `tokens` positions when the slot is paged.
fn grant_blocks(slot: &mut CpuSlot, alloc: &mut BlockAllocator, tokens: usize) {
    if let CpuSlot::Paged(table) = slot {
        while table.capacity_tokens() < tokens {
            table.push_block(alloc.alloc().expect("arena large enough for the test"));
        }
    }
}

props! {
    #![config(cases = 24)]

    /// CPU backend, flat and paged slots, serial and parallel strategies:
    /// `Backend::decode` (the batched GEMM path) must reproduce the
    /// sequential `forward_with_kv` loop exactly, across several steps
    /// with the batch membership permuted every step.
    fn cpu_batched_decode_is_bit_identical(
        n in 1usize..7,
        steps in 1usize..4,
        paged in any_bool(),
        parallel in any_bool(),
        seed in any_u64(),
    ) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let strategy = if parallel {
            MatVecStrategy::Parallel { threads: 3 }
        } else {
            MatVecStrategy::Serial
        };

        let mut model = Transformer::new(weights());
        model.set_strategy(strategy);
        let mut backend = if paged {
            CpuBackend::new_paged(model, BLOCKS)
        } else {
            CpuBackend::new(model)
        };
        let mut oracle = Transformer::new(weights());
        oracle.set_strategy(strategy);

        let mut alloc = BlockAllocator::new(BLOCKS);
        let prompts = prompts(&mut rng, n, cfg.vocab_size as u64);
        let budget = 5 + steps; // max prompt plus decode steps

        // Prefill each sequence through the backend and the sequential
        // oracle; the chunk logits must already agree exactly.
        let mut slots = Vec::new();
        let mut oracle_kvs = Vec::new();
        for prompt in &prompts {
            let mut slot = backend.new_slot();
            grant_blocks(&mut slot, &mut alloc, budget);
            let (got, _) = backend.prefill(&mut slot, prompt, 0);
            let mut kv = KvCache::new(&cfg);
            let mut want = Vec::new();
            for (pos, &tok) in prompt.iter().enumerate() {
                want = oracle.forward_with_kv(&mut kv, tok, pos).to_vec();
            }
            prop_assert_eq!(&got, &want, "prefill diverged");
            slots.push(slot);
            oracle_kvs.push(kv);
        }

        // Decode: batched through the backend, sequentially through the
        // oracle, with the batch membership order permuted every step.
        let mut order: Vec<usize> = (0..n).collect();
        for step in 0..steps {
            // Deterministic rotation + swap: a different permutation of the
            // same members each step.
            order.rotate_left(step % n.max(1));
            if n > 1 {
                let i = rng.below(n as u64) as usize;
                order.swap(0, i);
            }
            let tokens: Vec<u32> =
                (0..n).map(|_| rng.below(cfg.vocab_size as u64) as u32).collect();

            let mut refs: Vec<&mut CpuSlot> = Vec::with_capacity(n);
            let mut members = slots.iter_mut().collect::<Vec<_>>();
            // Reorder the mutable borrows to match the permutation.
            let mut by_index: Vec<Option<&mut CpuSlot>> =
                members.drain(..).map(Some).collect();
            for &i in &order {
                refs.push(by_index[i].take().expect("each member used once"));
            }
            let batch_tokens: Vec<u32> = order.iter().map(|&i| tokens[i]).collect();
            let (got, cost) = backend.decode(&mut refs, &batch_tokens);
            prop_assert_eq!(cost, n as u64, "CPU tick cost must stay per-token");

            for (slot_in_batch, &i) in order.iter().enumerate() {
                let pos = oracle_kvs[i].len();
                let want = oracle.forward_with_kv(&mut oracle_kvs[i], tokens[i], pos);
                prop_assert_eq!(
                    &got[slot_in_batch],
                    &want.to_vec(),
                    "batch {} seq {} step {} diverged",
                    n,
                    i,
                    step
                );
            }
        }
    }

    /// Accel backend: a batched `decode` must emit exactly the logits of
    /// the same sequences decoded one at a time (batch width 1) on an
    /// identically-prepared engine — the device batch shares weight
    /// streams in the timing model only, never in values.
    fn accel_batched_decode_is_bit_identical(
        n in 1usize..5,
        paged in any_bool(),
        seed in any_u64(),
    ) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let make = |paged: bool| {
            let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
            if paged {
                AccelBackend::new_paged(engine, BLOCKS)
            } else {
                AccelBackend::new(engine)
            }
        };
        let mut batched = make(paged);
        let mut sequential = make(paged);
        let mut b_alloc = BlockAllocator::new(BLOCKS);
        let mut s_alloc = BlockAllocator::new(BLOCKS);

        let prompts = prompts(&mut rng, n, cfg.vocab_size as u64);
        let budget = 5 + 2; // max prompt plus decode steps
        let mut b_slots = Vec::new();
        let mut s_slots = Vec::new();
        for prompt in &prompts {
            let mut bs = batched.new_slot();
            let mut ss = sequential.new_slot();
            for (slot, alloc) in [(&mut bs, &mut b_alloc), (&mut ss, &mut s_alloc)] {
                if let Some(table) = AccelBackend::slot_table_mut(slot) {
                    while table.capacity_tokens() < budget {
                        table.push_block(alloc.alloc().expect("arena large enough"));
                    }
                }
            }
            let (lb, _) = batched.prefill(&mut bs, prompt, 0);
            let (ls, _) = sequential.prefill(&mut ss, prompt, 0);
            prop_assert_eq!(&lb, &ls, "prefill must agree before decode");
            b_slots.push(bs);
            s_slots.push(ss);
        }

        for step in 0..2u32 {
            let tokens: Vec<u32> =
                (0..n).map(|_| rng.below(cfg.vocab_size as u64) as u32).collect();
            let mut refs: Vec<_> = b_slots.iter_mut().collect();
            let (got, _) = batched.decode(&mut refs, &tokens);
            for (i, slot) in s_slots.iter_mut().enumerate() {
                let mut one = [&mut *slot];
                let (want, _) = sequential.decode(&mut one, &tokens[i..=i]);
                prop_assert_eq!(
                    &got[i],
                    &want[0],
                    "accel batch {} seq {} step {} diverged",
                    n,
                    i,
                    step
                );
            }
        }
    }
}
