//! Property-based tests (speedllm-testkit) over the quantized weight
//! path (DESIGN.md §18): Q8_0/Q4_0 round-trip error bounds, group-scale
//! monotonicity, nibble pack/unpack exactness, and the bit-identity
//! contracts of the fused dequant-GEMM kernels (batched vs per-column,
//! parallel vs serial).
//!
//! Every property runs a 64-case budget; runs are reproducible from a
//! fixed seed (override with `TESTKIT_SEED=<u64>` to replay a failure).

use speedllm_testkit::prelude::*;

use speedllm::llama::parallel::{par_qmatmul, par_qmatvec};
use speedllm::llama::qgemm::{qmatmul, qmatvec};
use speedllm::llama::quant::{pack_nibbles, unpack_nibbles, QuantKind, QuantMatrix};
use speedllm::llama::rng::Xoshiro256;

fn random_matrix(rows: usize, cols: usize, seed: u64, sigma: f32) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut w = vec![0.0f32; rows * cols];
    rng.fill_normal(&mut w, sigma);
    w
}

fn random_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut x = vec![0.0f32; n];
    rng.fill_normal(&mut x, 1.0);
    x
}

props! {
    #![config(cases = 64)]

    fn int8_matrix_round_trip_error_is_bounded(
        rows in 1usize..12,
        cols in 1usize..80,
        seed in any_u64(),
    ) {
        let w = random_matrix(rows, cols, seed, 0.5);
        let qm = QuantMatrix::quantize_with(&w, rows, cols, QuantKind::Int8);
        let back = qm.dequantize();
        let bound = qm.error_bound() + 1e-6;
        for (a, b) in w.iter().zip(&back) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    fn int4_matrix_round_trip_error_is_bounded(
        rows in 1usize..12,
        cols in 1usize..80,
        seed in any_u64(),
    ) {
        let w = random_matrix(rows, cols, seed, 0.5);
        let qm = QuantMatrix::quantize_with(&w, rows, cols, QuantKind::Int4);
        let back = qm.dequantize();
        let bound = qm.error_bound() + 1e-6;
        for (a, b) in w.iter().zip(&back) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
        // int4 has 7 steps per half-range vs int8's 127: its bound is
        // strictly coarser on the same payload.
        let q8 = QuantMatrix::quantize_with(&w, rows, cols, QuantKind::Int8);
        prop_assert!(qm.error_bound() >= q8.error_bound());
    }

    fn group_scales_are_monotone_under_input_scaling(
        cols in 1usize..100,
        k in 1.5f32..16.0,
        seed in any_u64(),
    ) {
        // Symmetric absmax quantization: scaling the weights by k > 1
        // scales every group scale by exactly k (absmax is homogeneous).
        let w = random_matrix(2, cols, seed, 0.5);
        let scaled: Vec<f32> = w.iter().map(|v| v * k).collect();
        for kind in [QuantKind::Int8, QuantKind::Int4] {
            let qa = QuantMatrix::quantize_with(&w, 2, cols, kind);
            let qb = QuantMatrix::quantize_with(&scaled, 2, cols, kind);
            for (a, b) in qa.scales().iter().zip(qb.scales()) {
                prop_assert!(*b >= *a, "scale shrank under k={}: {} -> {}", k, a, b);
                if *a > 0.0 {
                    let ratio = b / a;
                    prop_assert!(
                        (ratio - k).abs() <= k * 1e-5,
                        "scale ratio {} != k {}", ratio, k
                    );
                }
            }
        }
    }

    fn nibble_pack_unpack_is_exact(values in vec_of(-8i8..8, 0..130)) {
        // Q4_0 codes live in [-8, 7] (biased to [0, 15] inside the pack);
        // pack/unpack must be lossless for every length parity.
        let packed = pack_nibbles(&values);
        prop_assert_eq!(packed.len(), values.len().div_ceil(2));
        let back = unpack_nibbles(&packed, values.len());
        prop_assert_eq!(back, values);
    }

    fn batched_qmatmul_is_bit_identical_to_per_column_qmatvec(
        rows in 1usize..10,
        cols in 1usize..70,
        batch in 1usize..10,
        seed in any_u64(),
    ) {
        let w = random_matrix(rows, cols, seed, 0.3);
        for kind in [QuantKind::Int8, QuantKind::Int4] {
            let qm = QuantMatrix::quantize_with(&w, rows, cols, kind);
            // Column-major activations: xs[b * cols ..][.. cols].
            let xs = random_vec(cols * batch, seed ^ 0x9e37);
            let mut got = vec![0.0f32; rows * batch];
            qmatmul(&mut got, &qm, &xs, batch);
            for b in 0..batch {
                let mut want = vec![0.0f32; rows];
                qmatvec(&mut want, &qm, &xs[b * cols..(b + 1) * cols]);
                for (r, wv) in want.iter().enumerate() {
                    prop_assert_eq!(
                        got[r * batch + b].to_bits(),
                        wv.to_bits(),
                        "row {} lane {} differs", r, b
                    );
                }
            }
        }
    }

    fn parallel_quant_kernels_are_bit_identical_to_serial(
        rows in 1usize..24,
        cols in 1usize..70,
        batch in 1usize..6,
        threads in 2usize..5,
        seed in any_u64(),
    ) {
        let w = random_matrix(rows, cols, seed, 0.3);
        for kind in [QuantKind::Int8, QuantKind::Int4] {
            let qm = QuantMatrix::quantize_with(&w, rows, cols, kind);
            let x = random_vec(cols, seed ^ 0x51ed);
            let mut serial = vec![0.0f32; rows];
            qmatvec(&mut serial, &qm, &x);
            let mut par = vec![1.0f32; rows];
            par_qmatvec(&mut par, &qm, &x, threads);
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            let xs = random_vec(cols * batch, seed ^ 0xabcd);
            let mut serial_m = vec![0.0f32; rows * batch];
            qmatmul(&mut serial_m, &qm, &xs, batch);
            let mut par_m = vec![1.0f32; rows * batch];
            par_qmatmul(&mut par_m, &qm, &xs, batch, threads);
            for (a, b) in serial_m.iter().zip(&par_m) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
