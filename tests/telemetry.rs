//! Cross-crate telemetry tests: an instrumented run must emit spans from
//! every layer (CPU reference, accel runtime, engine timing pass) and the
//! combined Chrome trace must carry both the host and simulator tracks;
//! with telemetry disabled the same run must record nothing.

use std::sync::Arc;
use std::sync::Mutex;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::fpga::cycles::ClockDomain;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::weights::TransformerWeights;
use speedllm::telemetry as tel;

/// Telemetry state is process-global; serialize the tests that toggle it.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with telemetry enabled and a clean slate, restoring the
/// disabled state (and clearing collected data) afterwards even on panic.
fn with_telemetry(f: impl FnOnce()) {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            tel::set_enabled(false);
            tel::reset();
        }
    }
    let _restore = Restore;
    tel::set_enabled(true);
    tel::reset();
    f();
}

fn cpu_reference_generate(max_new_tokens: usize) {
    use speedllm::llama::generate::{generate, GenerateOptions};
    use speedllm::llama::sampler::Sampler;
    use speedllm::llama::tokenizer::Tokenizer;
    let cfg = ModelConfig::test_tiny();
    let mut model = Transformer::new(TransformerWeights::synthetic(cfg, 11));
    let tokenizer = Tokenizer::synthetic(cfg.vocab_size, 7);
    let mut sampler = Sampler::new(SamplerKind::Argmax, 7);
    let options = GenerateOptions {
        max_new_tokens,
        stop_at_eos: false,
    };
    generate(&mut model, &tokenizer, &mut sampler, "hi", options);
}

#[test]
fn disabled_telemetry_records_no_spans_or_metrics() {
    let _g = LOCK.lock().unwrap();
    tel::set_enabled(false);
    tel::reset();

    cpu_reference_generate(3);
    let system =
        AcceleratedLlm::synthetic(ModelConfig::test_tiny(), 11, OptConfig::full()).unwrap();
    let mut session = system.session(SamplerKind::Argmax, 7);
    session.generate("hi", 2).unwrap();

    assert_eq!(tel::span_count(), 0, "disabled run must not collect spans");
    assert_eq!(tel::dropped_spans(), 0);
    assert!(
        tel::metrics::snapshot().is_empty(),
        "disabled run must not record metrics"
    );
}

#[test]
fn enabled_run_emits_spans_from_every_layer() {
    let _g = LOCK.lock().unwrap();
    with_telemetry(|| {
        cpu_reference_generate(3);
        let system =
            AcceleratedLlm::synthetic(ModelConfig::test_tiny(), 11, OptConfig::full()).unwrap();
        let mut session = system.session(SamplerKind::Argmax, 7);
        session.generate("hi", 3).unwrap();

        let spans = tel::drain_spans();
        for track in ["cpu", "host", "engine"] {
            assert!(
                spans.iter().any(|s| s.track == track),
                "no span on track {track:?}; got tracks {:?}",
                spans
                    .iter()
                    .map(|s| s.track)
                    .collect::<std::collections::BTreeSet<_>>()
            );
        }

        let snap = tel::metrics::snapshot();
        let hist_names: Vec<&str> = snap.histograms.iter().map(|(n, _)| *n).collect();
        assert!(
            hist_names.contains(&"accel.decode_token_cycles"),
            "got {hist_names:?}"
        );
        assert!(
            hist_names.contains(&"llama.decode_token_ns"),
            "got {hist_names:?}"
        );
        let counters: Vec<&str> = snap.counters.iter().map(|(n, _)| *n).collect();
        assert!(
            counters.contains(&"sim.kernel_launches"),
            "got {counters:?}"
        );
    });
}

#[test]
fn combined_chrome_trace_has_host_and_sim_processes() {
    let _g = LOCK.lock().unwrap();
    with_telemetry(|| {
        let cfg = ModelConfig::test_tiny();
        let weights = Arc::new(TransformerWeights::synthetic(cfg, 11));
        let mut engine = Engine::new(weights, OptConfig::full()).unwrap();
        engine.capture_trace(1 << 12);
        for pos in 0..3 {
            engine.decode_step(1 + pos as u32, pos);
        }
        let sim = engine.take_trace().expect("capture was requested");

        let mut trace = tel::export::ChromeTrace::new();
        sim.to_chrome_track(&ClockDomain::U280_KERNEL, tel::export::SIM_PID, &mut trace);
        let json = tel::export::chrome_trace_json(&tel::drain_spans(), Some(trace));

        assert!(
            json.contains("\"host (wall time)\""),
            "missing host process meta"
        );
        assert!(
            json.contains("\"fpga-sim (cycle time)\""),
            "missing sim process meta"
        );
        assert!(json.contains("\"ph\":\"X\""), "no complete events");
        // Both pids must appear on complete events, i.e. the two timelines
        // really share one file.
        assert!(json.contains(&format!("\"pid\":{}", tel::export::HOST_PID)));
        assert!(json.contains(&format!("\"pid\":{}", tel::export::SIM_PID)));
    });
}
