//! ISSUE 6 acceptance telemetry: during prefill/decode overlap, a mixed
//! tick's GEMM batch width must exceed the active decode count — the
//! prefill rows ride the same weight stream. This lives in its own test
//! binary (one `#[test]`) because telemetry state is process-global and
//! last-write-wins gauges cannot be asserted exactly under a
//! multi-threaded test runner.

use std::sync::Arc;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::weights::TransformerWeights;
use speedllm::serve::{AccelBackend, Backend, CpuBackend};
use speedllm::telemetry as tel;

fn weights() -> TransformerWeights {
    TransformerWeights::synthetic(ModelConfig::test_tiny(), 42)
}

fn gauge(snap: &tel::metrics::MetricsSnapshot, name: &str) -> f64 {
    snap.gauges
        .iter()
        .find(|(k, _)| *k == name)
        .unwrap_or_else(|| panic!("gauge {name} was not recorded"))
        .1
}

fn counter(snap: &tel::metrics::MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(k, _)| *k == name)
        .unwrap_or_else(|| panic!("counter {name} was not recorded"))
        .1
}

#[test]
fn mixed_tick_gemm_width_exceeds_decode_count_on_both_backends() {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            tel::set_enabled(false);
            tel::reset();
        }
    }
    let _restore = Restore;

    // CPU backend: warm one slot (2 context tokens), leave one cold, then
    // run a mixed tick of 1 decode row + a 3-row prefill chunk.
    let mut cpu = CpuBackend::new(Transformer::new(weights()));
    let mut warm = cpu.new_slot();
    let mut cold = cpu.new_slot();
    cpu.prefill(&mut warm, &[1, 5], 0);
    tel::set_enabled(true);
    tel::reset();
    let decode: &[u32] = &[7];
    let chunk: &[u32] = &[1, 9, 3];
    cpu.forward_mixed(&mut [&mut warm, &mut cold], &[decode, chunk]);
    let snap = tel::metrics::snapshot();
    tel::set_enabled(false);
    tel::reset();
    let width = gauge(&snap, "cpu.gemm_batch_width");
    assert_eq!(width, 4.0, "1 decode + 3 prefill rows in one GEMM pass");
    assert!(
        width > 1.0,
        "width must exceed the active decode count of 1"
    );
    assert_eq!(counter(&snap, "cpu.gemm_tokens"), 4);
    assert!(counter(&snap, "cpu.gemm_weight_bytes") > 0);

    // Accelerator simulation: same shape, device-side telemetry.
    let engine = Engine::new(Arc::new(weights()), OptConfig::full()).unwrap();
    let mut accel = AccelBackend::new(engine);
    let mut warm = accel.new_slot();
    let mut cold = accel.new_slot();
    accel.prefill(&mut warm, &[1, 5], 0);
    tel::set_enabled(true);
    tel::reset();
    accel.forward_mixed(&mut [&mut warm, &mut cold], &[decode, chunk]);
    let snap = tel::metrics::snapshot();
    tel::set_enabled(false);
    tel::reset();
    let width = gauge(&snap, "accel.gemm_batch_width");
    assert_eq!(width, 4.0, "device tick carries all 4 rows at once");
    assert_eq!(counter(&snap, "accel.gemm_tokens"), 4);
    assert!(counter(&snap, "accel.gemm_weight_bytes") > 0);
}
