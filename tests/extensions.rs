//! Integration tests of the features that extend beyond the paper:
//! chunked prefill, the roofline analysis, perplexity evaluation, sparse
//! substrates, and trace export.

use speedllm::accel::opt::OptConfig;
use speedllm::accel::roofline::Roofline;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::fpga::cycles::ClockDomain;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::eval::{evaluate_reference, evaluate_with};
use speedllm::llama::forward::Transformer;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::sparse::BlockSparseMatrix;
use speedllm::llama::weights::TransformerWeights;

#[test]
fn chunked_prefill_end_to_end_equivalence() {
    // A system with chunked prefill must generate the identical token
    // sequence, only faster.
    let cfg = ModelConfig::stories260k();
    let plain = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).unwrap();
    let mut chunked_sys = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).unwrap();
    chunked_sys.set_prefill_chunk(8);
    let prompt = "Once upon a time there was a little dog named Tim and he liked to play";
    let a = plain
        .session(SamplerKind::Argmax, 0)
        .generate(prompt, 12)
        .unwrap();
    let b = chunked_sys
        .session(SamplerKind::Argmax, 0)
        .generate(prompt, 12)
        .unwrap();
    assert_eq!(a.output.generated_tokens, b.output.generated_tokens);
    assert!(
        b.prefill_cycles < a.prefill_cycles,
        "chunked prefill {} !< plain {}",
        b.prefill_cycles.0,
        a.prefill_cycles.0
    );
    // Decode is unaffected.
    assert_eq!(a.decode_cycles, b.decode_cycles);
}

#[test]
fn accelerator_perplexity_matches_reference() {
    let cfg = ModelConfig::test_tiny();
    let weights = TransformerWeights::synthetic(cfg, 42);
    let tokens: Vec<u32> = (0..20)
        .map(|i| (i * 13 + 7) % cfg.vocab_size as u32)
        .collect();
    let mut reference = Transformer::new(weights.clone());
    let want = evaluate_reference(&mut reference, &tokens);

    let sys = AcceleratedLlm::new(
        weights,
        speedllm::llama::tokenizer::Tokenizer::synthetic(cfg.vocab_size, 1),
        OptConfig::full(),
    )
    .unwrap();
    let mut session = sys.session(SamplerKind::Argmax, 0);
    let got = evaluate_with(cfg.vocab_size, &tokens, |t, p| session.step(t, p).logits);
    assert!(
        (want.perplexity() - got.perplexity()).abs() < 0.01 * want.perplexity(),
        "{} vs {}",
        want.perplexity(),
        got.perplexity()
    );
}

#[test]
fn int8_perplexity_degrades_only_mildly() {
    // The quantized accelerator should track the fp32 reference closely in
    // *quality*, not just per-logit distance.
    let cfg = ModelConfig::test_tiny();
    let weights = TransformerWeights::synthetic(cfg, 42);
    let tokens: Vec<u32> = (0..20)
        .map(|i| (i * 11 + 3) % cfg.vocab_size as u32)
        .collect();
    let mut reference = Transformer::new(weights.clone());
    let base = evaluate_reference(&mut reference, &tokens);

    let sys = AcceleratedLlm::new(
        weights,
        speedllm::llama::tokenizer::Tokenizer::synthetic(cfg.vocab_size, 1),
        OptConfig::full_int8(),
    )
    .unwrap();
    let mut session = sys.session(SamplerKind::Argmax, 0);
    let q = evaluate_with(cfg.vocab_size, &tokens, |t, p| session.step(t, p).logits);
    let rel = (q.perplexity() - base.perplexity()).abs() / base.perplexity();
    assert!(rel < 0.05, "int8 perplexity off by {:.1}%", rel * 100.0);
}

#[test]
fn roofline_places_decode_left_of_ridge() {
    let cfg = ModelConfig::stories260k();
    let sys = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).unwrap();
    let roof = Roofline::of(sys.accel_config(), &ClockDomain::U280_KERNEL);
    let mut s = sys.session(SamplerKind::Argmax, 0);
    let r = s.generate("hello there friend", 8).unwrap();
    let p = roof.place(&r.stats, &ClockDomain::U280_KERNEL);
    assert!(p.memory_bound, "decode workloads are memory-bound: {p:?}");
    assert!(p.intensity > 0.0);
}

#[test]
fn sparse_pruning_of_real_layer_weights() {
    // Prune a real model layer and verify the sparse kernel agrees with a
    // dense kernel over the pruned weights.
    let cfg = ModelConfig::test_tiny();
    let w = TransformerWeights::synthetic(cfg, 9);
    let layer = &w.layers[0];
    let m = BlockSparseMatrix::prune(&layer.w1, cfg.hidden_dim, cfg.dim, 8, 0.5);
    assert!((m.density() - 0.5).abs() < 0.1);
    let x: Vec<f32> = (0..cfg.dim).map(|i| (i as f32 * 0.31).sin()).collect();
    let dense = m.to_dense();
    let mut want = vec![0.0f32; cfg.hidden_dim];
    speedllm::llama::ops::matvec(&mut want, &dense, &x, cfg.hidden_dim, cfg.dim);
    let mut got = vec![0.0f32; cfg.hidden_dim];
    m.matvec(&mut got, &x);
    for (a, b) in want.iter().zip(&got) {
        assert!((a - b).abs() < 1e-4);
    }
}

#[test]
fn chrome_trace_exports_from_engine() {
    let cfg = ModelConfig::test_tiny();
    let sys = AcceleratedLlm::synthetic(cfg, 42, OptConfig::full()).unwrap();
    let mut s = sys.session(SamplerKind::Argmax, 0);
    s.engine_mut().capture_trace(1024);
    s.step(1, 0);
    let trace = s.engine_mut().take_trace().unwrap();
    let json = trace.to_chrome_json(&ClockDomain::U280_KERNEL);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("MPE"));
}

#[test]
fn dataflow_functional_mode_end_to_end() {
    use speedllm::accel::engine::{AccelConfig, Engine};
    use std::sync::Arc;
    let cfg = ModelConfig::stories260k();
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 5));
    let mut accel_cfg = AccelConfig::for_opt(&OptConfig::full());
    accel_cfg.functional_dataflow = true;
    let mut threaded =
        Engine::with_config(Arc::clone(&weights), OptConfig::full(), accel_cfg).unwrap();
    let mut serial = Engine::new(weights, OptConfig::full()).unwrap();
    for pos in 0..2 {
        assert_eq!(
            serial.decode_step(2, pos).logits,
            threaded.decode_step(2, pos).logits
        );
    }
}
