//! Property tests (speedllm-testkit) over the serving layer: for random
//! request streams and scheduler shapes, every admitted request completes
//! exactly once, admission stays FIFO, slot usage never exceeds the pool
//! or overlaps on one slot, and the pool drains clean after every run —
//! plus a reuse-hygiene check that a recycled slot is indistinguishable
//! from a fresh one.

use speedllm_testkit::prelude::*;

use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::rng::Xoshiro256;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::tokenizer::TOKEN_BOS;
use speedllm::llama::weights::TransformerWeights;
use speedllm::serve::{
    ArrivalMode, Completion, CpuBackend, LoadGen, LoadGenConfig, Request, ServeConfig, ServeEngine,
};

fn cpu_engine(slots: usize, max_batch: usize, chunk: usize) -> ServeEngine<CpuBackend> {
    let model = Transformer::new(TransformerWeights::synthetic(ModelConfig::test_tiny(), 42));
    ServeEngine::new(
        CpuBackend::new(model),
        ServeConfig {
            slots,
            max_batch,
            prefill_chunk: chunk,
            queue_cap: 64,
            unified: None,
        },
    )
}

/// A random but valid request stream for the tiny model: prompt lengths
/// 1..=6 (BOS first), budgets 0..=5 (zero budget included on purpose).
fn random_requests(seed: u64, n: usize) -> Vec<Request> {
    let cfg = ModelConfig::test_tiny();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let plen = 1 + rng.below(6) as usize;
            let mut prompt = vec![TOKEN_BOS];
            for _ in 1..plen {
                prompt.push(3 + rng.below(cfg.vocab_size as u64 - 3) as u32);
            }
            Request {
                id,
                prompt,
                max_new_tokens: rng.below(6) as usize,
                stop_at_eos: true,
                sampler: SamplerKind::Temperature(0.8),
                seed: rng.next_u64(),
                arrival: 0,
            }
        })
        .collect()
}

fn drain(engine: &mut ServeEngine<CpuBackend>) -> Vec<Completion> {
    let mut out = Vec::new();
    while !engine.is_idle() {
        out.extend(engine.step());
    }
    out
}

props! {
    #![config(cases = 64)]

    fn every_request_completes_exactly_once(
        n in 1usize..12,
        slots in 1usize..5,
        max_batch in 1usize..6,
        chunk in 1usize..5,
        seed in any_u64(),
    ) {
        let mut engine = cpu_engine(slots, max_batch, chunk);
        for req in random_requests(seed, n) {
            prop_assert!(engine.submit(req).is_ok());
        }
        let mut done = drain(&mut engine);
        prop_assert_eq!(done.len(), n, "a request was lost or duplicated");
        done.sort_by_key(|c| c.id);
        for (i, c) in done.iter().enumerate() {
            prop_assert_eq!(c.id, i as u64, "ids must cover 0..n exactly once");
        }
        prop_assert!(engine.all_slots_free(), "pool did not drain");
    }

    fn admission_is_fifo_and_slots_bound_usage(
        n in 2usize..12,
        slots in 1usize..4,
        seed in any_u64(),
    ) {
        let mut engine = cpu_engine(slots, 8, 3);
        for req in random_requests(seed, n) {
            prop_assert!(engine.submit(req).is_ok());
        }
        let mut done = drain(&mut engine);
        done.sort_by_key(|c| c.id);
        for (i, c) in done.iter().enumerate() {
            // Submission order == id order, the queue is FIFO, so the
            // admission sequence must equal the id.
            prop_assert_eq!(c.admission_seq, i as u64, "FIFO admission violated");
            prop_assert!(c.slot_index < slots, "slot index outside the pool");
        }
        // No slot double-assignment: two requests whose occupancy windows
        // strictly overlap in virtual time can never share a slot.
        for a in &done {
            for b in &done {
                if a.id < b.id
                    && a.admitted_at < b.finished_at
                    && b.admitted_at < a.finished_at
                {
                    prop_assert!(
                        a.slot_index != b.slot_index,
                        "requests {} and {} overlapped on slot {}",
                        a.id, b.id, a.slot_index
                    );
                }
            }
        }
    }

    fn loadgen_traffic_drains_clean_and_reuses_slots(
        n in 1usize..16,
        slots in 1usize..4,
        closed in any_bool(),
        seed in any_u64(),
    ) {
        let mode = if closed {
            ArrivalMode::Closed { concurrency: slots.max(2) }
        } else {
            ArrivalMode::Open { mean_interarrival: 8 }
        };
        let cfg = ModelConfig::test_tiny();
        let mut engine = cpu_engine(slots, 8, 4);
        let mut traffic = LoadGen::new(&LoadGenConfig {
            n_requests: n,
            mode,
            prompt_len: (2, 6),
            shared_prefix_len: 0,
            max_new_tokens: (1, 6),
            sampler: SamplerKind::Temperature(0.8),
            stop_at_eos: true,
            vocab_size: cfg.vocab_size,
            seq_len: cfg.seq_len,
            seed,
        });
        let done = engine.run_with_source(&mut traffic);
        prop_assert_eq!(done.len(), n, "an admitted request never completed");
        prop_assert!(engine.all_slots_free(), "slot leaked after traffic run");
        // Every acquisition past the first per slot is a reuse.
        prop_assert!(
            engine.slot_reuses() >= n.saturating_sub(slots) as u64,
            "{} requests through {} slots reused only {} times",
            n, slots, engine.slot_reuses()
        );
    }

    fn token_streams_are_independent_of_batch_composition(
        n in 2usize..8,
        seed in any_u64(),
    ) {
        // The same requests served strictly sequentially (1 slot) and
        // fully batched (n slots) must emit identical per-id streams.
        let reqs = random_requests(seed, n);
        let mut solo = cpu_engine(1, 1, 2);
        let mut wide = cpu_engine(n, 8, 4);
        for req in reqs.iter().cloned() {
            prop_assert!(solo.submit(req).is_ok());
        }
        for req in reqs {
            prop_assert!(wide.submit(req).is_ok());
        }
        let mut a = drain(&mut solo);
        let mut b = drain(&mut wide);
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(
                &x.tokens, &y.tokens,
                "request {} changed its stream under batching", x.id
            );
        }
    }
}

/// Reuse hygiene: after a traffic run drains, a second identical wave
/// through the same (recycled) pool must reproduce the first wave's
/// streams token for token — a reused slot is indistinguishable from a
/// fresh one.
#[test]
fn recycled_slots_are_indistinguishable_from_fresh() {
    let mut engine = cpu_engine(2, 4, 3);
    let wave = random_requests(9, 8);

    for req in wave.iter().cloned() {
        engine.submit(req).unwrap();
    }
    let mut first = drain(&mut engine);
    assert!(engine.all_slots_free());
    assert!(
        engine.slot_reuses() >= 6,
        "8 requests over 2 slots must recycle"
    );

    for req in wave {
        engine.submit(req).unwrap();
    }
    let mut second = drain(&mut engine);
    assert!(engine.all_slots_free());

    first.sort_by_key(|c| c.id);
    second.sort_by_key(|c| c.id);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.tokens, b.tokens, "recycled slot changed request {}", a.id);
    }
}
