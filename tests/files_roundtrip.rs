//! End-to-end file-format tests: checkpoints and tokenizers written to disk
//! in the llama2.c binary formats load back into a system that generates
//! identical output — the path a user with a real `stories15M.bin` +
//! `tokenizer.bin` exercises.

use std::path::PathBuf;

use speedllm::accel::opt::OptConfig;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::sampler::SamplerKind;
use speedllm::llama::tokenizer::Tokenizer;
use speedllm::llama::weights::TransformerWeights;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("speedllm_it_{}_{name}", std::process::id()))
}

#[test]
fn full_system_roundtrips_through_disk() {
    let cfg = ModelConfig::test_tiny();
    let weights = TransformerWeights::synthetic(cfg, 42);
    let tokenizer = Tokenizer::synthetic(cfg.vocab_size, 42);

    let wpath = tmp("model.bin");
    let tpath = tmp("tokenizer.bin");
    weights.save(&wpath).unwrap();
    tokenizer.save(&tpath).unwrap();

    let loaded_w = TransformerWeights::load(&wpath).unwrap();
    let loaded_t = Tokenizer::load(&tpath, cfg.vocab_size).unwrap();
    std::fs::remove_file(&wpath).ok();
    std::fs::remove_file(&tpath).ok();

    assert_eq!(loaded_w, weights);

    let orig = AcceleratedLlm::new(weights, tokenizer, OptConfig::full()).unwrap();
    let loaded = AcceleratedLlm::new(loaded_w, loaded_t, OptConfig::full()).unwrap();
    let a = orig
        .session(SamplerKind::Argmax, 0)
        .generate("hello world", 8)
        .unwrap();
    let b = loaded
        .session(SamplerKind::Argmax, 0)
        .generate("hello world", 8)
        .unwrap();
    assert_eq!(a.output.generated_tokens, b.output.generated_tokens);
    assert_eq!(a.output.text, b.output.text);
    assert_eq!(a.decode_cycles, b.decode_cycles);
}

#[test]
fn checkpoint_bytes_follow_llama2c_layout() {
    // Independent byte-level check of the writer against the documented
    // legacy llama2.c layout, so a third-party loader (or the real
    // llama2.c `run`) would accept our files.
    let cfg = ModelConfig::test_tiny();
    let w = TransformerWeights::synthetic(cfg, 5);
    let mut buf = Vec::new();
    w.write_to(&mut buf).unwrap();

    // Header: 7 little-endian i32s.
    let i32_at = |i: usize| i32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().unwrap());
    assert_eq!(i32_at(0) as usize, cfg.dim);
    assert_eq!(i32_at(6) as usize, cfg.seq_len);

    // First tensor after the header is the embedding table: check its very
    // first float equals embedding[0].
    let f = f32::from_le_bytes(buf[28..32].try_into().unwrap());
    assert_eq!(f, w.token_embedding[0]);

    // The rms_att gain of layer 0 follows the full embedding table.
    let off = 28 + cfg.vocab_size * cfg.dim * 4;
    let f = f32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
    assert_eq!(f, w.layers[0].rms_att[0]);
}

#[test]
fn tokenizer_bytes_follow_llama2c_layout() {
    let t = Tokenizer::synthetic(300, 1);
    let mut buf = Vec::new();
    t.write_to(&mut buf).unwrap();
    // i32 max_token_length first.
    let max_len = i32::from_le_bytes(buf[0..4].try_into().unwrap());
    assert_eq!(max_len as usize, t.max_token_length());
    // Then (f32 score, i32 len, bytes) for token 0 = "<unk>".
    let len0 = i32::from_le_bytes(buf[8..12].try_into().unwrap());
    assert_eq!(len0, 5);
    assert_eq!(&buf[12..17], b"<unk>");
}

#[test]
fn corrupted_checkpoint_fails_loudly() {
    let cfg = ModelConfig::test_tiny();
    let w = TransformerWeights::synthetic(cfg, 9);
    let path = tmp("corrupt.bin");
    w.save(&path).unwrap();
    // Truncate the file mid-tensor.
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() * 2 / 3]).unwrap();
    let err = TransformerWeights::load(&path);
    std::fs::remove_file(&path).ok();
    assert!(err.is_err(), "truncated checkpoint must not load");
}

#[test]
fn foreign_header_with_untied_classifier_loads() {
    // Emulate a file produced by llama2.c's export with negative vocab
    // (untied classifier) and confirm the loader honors it.
    let cfg = ModelConfig {
        shared_classifier: false,
        ..ModelConfig::test_tiny()
    };
    let w = TransformerWeights::synthetic(cfg, 17);
    let mut buf = Vec::new();
    w.write_to(&mut buf).unwrap();
    let header_vocab = i32::from_le_bytes(buf[20..24].try_into().unwrap());
    assert!(
        header_vocab < 0,
        "untied classifier encodes as negative vocab"
    );
    let r = TransformerWeights::read_from(&mut buf.as_slice()).unwrap();
    assert!(!r.config.shared_classifier);
    assert!(r.wcls.is_some());
}
