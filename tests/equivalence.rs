//! Cross-crate functional-equivalence tests: the simulated accelerator must
//! produce the same logits as the CPU reference for every optimization
//! variant — the co-design changes timing, never values.

use std::sync::Arc;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::tensor::Tensor;
use speedllm::llama::weights::TransformerWeights;

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let ta = Tensor::from_vec(a.to_vec(), &[a.len()]);
    let tb = Tensor::from_vec(b.to_vec(), &[b.len()]);
    ta.max_abs_diff(&tb)
}

fn check_equivalence(cfg: ModelConfig, seed: u64, steps: usize, tol: f32) {
    let weights = TransformerWeights::synthetic(cfg, seed);
    let mut reference = Transformer::new(weights.clone());
    let weights = Arc::new(weights);
    let mut engines: Vec<Engine> = OptConfig::all_corners()
        .into_iter()
        .map(|(_, opt)| Engine::new(Arc::clone(&weights), opt).unwrap())
        .collect();
    // A pseudo-random but deterministic token walk.
    let mut tok = 1u32;
    for pos in 0..steps {
        tok = (tok.wrapping_mul(31).wrapping_add(7)) % cfg.vocab_size as u32;
        let expected = reference.forward(tok, pos).to_vec();
        for engine in &mut engines {
            let got = engine.decode_step(tok, pos);
            let d = max_diff(&expected, &got.logits);
            assert!(
                d < tol,
                "variant {} diverged by {d} at pos {pos}",
                engine.opt().short_name()
            );
        }
    }
}

#[test]
fn all_corners_match_reference_tiny() {
    check_equivalence(ModelConfig::test_tiny(), 42, 8, 1e-4);
}

#[test]
fn all_corners_match_reference_stories260k() {
    check_equivalence(ModelConfig::stories260k(), 7, 5, 1e-3);
}

#[test]
fn gqa_architecture_matches_reference() {
    // test_tiny already uses GQA (4 heads, 2 kv heads); exercise a deeper
    // GQA ratio too.
    let cfg = ModelConfig {
        dim: 32,
        hidden_dim: 96,
        n_layers: 3,
        n_heads: 8,
        n_kv_heads: 2,
        vocab_size: 96,
        seq_len: 24,
        shared_classifier: true,
    };
    check_equivalence(cfg, 11, 6, 1e-4);
}

#[test]
fn untied_classifier_matches_reference() {
    let cfg = ModelConfig {
        shared_classifier: false,
        ..ModelConfig::test_tiny()
    };
    check_equivalence(cfg, 13, 5, 1e-4);
}

#[test]
fn int8_engine_tracks_reference_within_quant_error() {
    let cfg = ModelConfig::stories260k();
    let weights = TransformerWeights::synthetic(cfg, 3);
    let mut reference = Transformer::new(weights.clone());
    let mut engine = Engine::new(Arc::new(weights), OptConfig::full_int8()).unwrap();
    for pos in 0..3 {
        let expected = reference.forward(9, pos).to_vec();
        let got = engine.decode_step(9, pos);
        let d = max_diff(&expected, &got.logits);
        assert!(d < 0.35, "int8 diverged by {d} at pos {pos}");
        // And the argmax — what decoding actually uses — should usually
        // agree on a trained-scale random model at pos 0.
        if pos == 0 {
            let am_ref = speedllm::llama::sampler::argmax(&expected);
            let am_got = speedllm::llama::sampler::argmax(&got.logits);
            // Allow disagreement only if the two logits are within the
            // quantization noise of each other.
            if am_ref != am_got {
                let gap = (expected[am_ref as usize] - expected[am_got as usize]).abs();
                assert!(gap < 0.35, "int8 flipped a decisive argmax (gap {gap})");
            }
        }
    }
}

#[test]
fn engine_logits_depend_on_history() {
    let cfg = ModelConfig::test_tiny();
    let weights = Arc::new(TransformerWeights::synthetic(cfg, 21));
    let mut a = Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap();
    let mut b = Engine::new(weights, OptConfig::full()).unwrap();
    a.decode_step(1, 0);
    b.decode_step(2, 0);
    let la = a.decode_step(5, 1).logits;
    let lb = b.decode_step(5, 1).logits;
    assert!(max_diff(&la, &lb) > 1e-6, "KV cache must affect logits");
}
