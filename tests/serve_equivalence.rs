//! Batched-vs-sequential equivalence: the continuous-batching engine must
//! emit **token-identical** streams to the single-tenant entry points —
//! `llama::generate` for the CPU backend and the accel runtime `Session`
//! for the simulated accelerator — across a grid of slot counts, request
//! counts, seeds, and samplers. Batching changes timing, never tokens:
//! each request carries its own seeded sampler, so its stream cannot
//! depend on what else shares the batch.

use std::sync::Arc;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::generate::{generate, GenerateOptions};
use speedllm::llama::sampler::{Sampler, SamplerKind};
use speedllm::llama::tokenizer::Tokenizer;
use speedllm::llama::weights::TransformerWeights;
use speedllm::serve::{
    AccelBackend, Backend, Completion, CpuBackend, Request, ServeConfig, ServeEngine,
};

const PROMPTS: [&str; 4] = ["once upon a time", "hello", "the quick brown fox", "ab"];
const MAX_NEW: usize = 8;

fn serve_cfg(slots: usize) -> ServeConfig {
    ServeConfig {
        slots,
        max_batch: 4,
        prefill_chunk: 3,
        queue_cap: 16,
    }
}

fn request(id: u64, prompt: Vec<u32>, sampler: SamplerKind, seed: u64) -> Request {
    Request {
        id,
        prompt,
        max_new_tokens: MAX_NEW,
        stop_at_eos: true,
        sampler,
        seed,
        arrival: 0,
    }
}

/// Submits `prompts` all at once and drains the engine; completions come
/// back sorted by request id.
fn serve_all<B: Backend>(
    mut engine: ServeEngine<B>,
    prompts: &[Vec<u32>],
    sampler: SamplerKind,
    seed_base: u64,
) -> Vec<Completion> {
    for (i, p) in prompts.iter().enumerate() {
        engine
            .submit(request(i as u64, p.clone(), sampler, seed_base + i as u64))
            .expect("queue_cap covers the grid sizes");
    }
    let mut done = Vec::new();
    while !engine.is_idle() {
        done.extend(engine.step());
    }
    assert!(engine.all_slots_free(), "a slot leaked");
    done.sort_by_key(|c| c.id);
    done
}

fn cpu_grid_case(cfg: ModelConfig, seed: u64, n_requests: usize, slots: usize, kind: SamplerKind) {
    let tok = Tokenizer::synthetic(cfg.vocab_size, seed);
    let prompts: Vec<Vec<u32>> = PROMPTS[..n_requests]
        .iter()
        .map(|p| tok.encode(p, true, false))
        .collect();

    let backend = CpuBackend::new(Transformer::new(TransformerWeights::synthetic(cfg, seed)));
    let done = serve_all(
        ServeEngine::new(backend, serve_cfg(slots)),
        &prompts,
        kind,
        1000,
    );

    assert_eq!(done.len(), n_requests);
    for (i, text) in PROMPTS[..n_requests].iter().enumerate() {
        let mut oracle = Transformer::new(TransformerWeights::synthetic(cfg, seed));
        let mut sampler = Sampler::new(kind, 1000 + i as u64);
        let want = generate(
            &mut oracle,
            &tok,
            &mut sampler,
            text,
            GenerateOptions {
                max_new_tokens: MAX_NEW,
                stop_at_eos: true,
            },
        );
        assert_eq!(
            done[i].tokens, want.generated_tokens,
            "cpu backend diverged from llama::generate \
             (seed {seed}, n {n_requests}, slots {slots}, request {i}, {kind:?})"
        );
    }
}

fn accel_grid_case(
    cfg: ModelConfig,
    seed: u64,
    n_requests: usize,
    slots: usize,
    kind: SamplerKind,
) {
    // The sequential oracle is the accel runtime Session (which always
    // stops at EOS/BOS — hence stop_at_eos: true on every request).
    let system = AcceleratedLlm::synthetic(cfg, seed, OptConfig::full()).unwrap();
    let prompts: Vec<Vec<u32>> = PROMPTS[..n_requests]
        .iter()
        .map(|p| system.tokenizer().encode(p, true, false))
        .collect();

    let weights = Arc::new(TransformerWeights::synthetic(cfg, seed));
    let backend = AccelBackend::new(Engine::new(weights, OptConfig::full()).unwrap());
    let done = serve_all(
        ServeEngine::new(backend, serve_cfg(slots)),
        &prompts,
        kind,
        2000,
    );

    assert_eq!(done.len(), n_requests);
    for (i, text) in PROMPTS[..n_requests].iter().enumerate() {
        let mut session = system.session(kind, 2000 + i as u64);
        let want = session.generate(text, MAX_NEW).unwrap();
        assert_eq!(
            done[i].tokens, want.output.generated_tokens,
            "accel backend diverged from Session::generate \
             (seed {seed}, n {n_requests}, slots {slots}, request {i}, {kind:?})"
        );
    }
}

#[test]
fn cpu_backend_matches_sequential_generate_across_grid() {
    for seed in [7u64, 21] {
        for n_requests in [1usize, 2, 4] {
            for slots in [1usize, 2, 4] {
                for kind in [SamplerKind::Argmax, SamplerKind::Temperature(0.8)] {
                    cpu_grid_case(ModelConfig::test_tiny(), seed, n_requests, slots, kind);
                }
            }
        }
    }
}

#[test]
fn accel_backend_matches_sequential_session_across_grid() {
    for seed in [7u64, 21] {
        for n_requests in [1usize, 2, 4] {
            for slots in [1usize, 2] {
                for kind in [SamplerKind::Argmax, SamplerKind::Temperature(0.8)] {
                    accel_grid_case(ModelConfig::test_tiny(), seed, n_requests, slots, kind);
                }
            }
        }
    }
}

#[test]
fn equivalence_holds_on_a_real_preset() {
    // One heavier spot check on stories260k: both backends, mixed batch.
    cpu_grid_case(
        ModelConfig::stories260k(),
        42,
        3,
        2,
        SamplerKind::Temperature(0.9),
    );
    accel_grid_case(ModelConfig::stories260k(), 42, 2, 2, SamplerKind::Argmax);
}

#[test]
fn cpu_and_accel_backends_agree_with_each_other() {
    // Transitivity check done directly: the two backends serve the same
    // workload and must emit the same streams (fp32 accel path).
    let cfg = ModelConfig::test_tiny();
    let seed = 11u64;
    let tok = Tokenizer::synthetic(cfg.vocab_size, seed ^ 0x5eed);
    let prompts: Vec<Vec<u32>> = PROMPTS.iter().map(|p| tok.encode(p, true, false)).collect();
    let kind = SamplerKind::Temperature(0.7);

    let cpu = CpuBackend::new(Transformer::new(TransformerWeights::synthetic(cfg, seed)));
    let a = serve_all(ServeEngine::new(cpu, serve_cfg(2)), &prompts, kind, 3000);

    let weights = Arc::new(TransformerWeights::synthetic(cfg, seed));
    let accel = AccelBackend::new(Engine::new(weights, OptConfig::full()).unwrap());
    let b = serve_all(ServeEngine::new(accel, serve_cfg(3)), &prompts, kind, 3000);

    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.tokens, y.tokens,
            "request {} differs across backends",
            x.id
        );
    }
}
