//! Batched-vs-sequential equivalence: the continuous-batching engine must
//! emit **token-identical** streams to the single-tenant entry points —
//! `llama::generate` for the CPU backend and the accel runtime `Session`
//! for the simulated accelerator — across a grid of slot counts, request
//! counts, seeds, and samplers. Batching changes timing, never tokens:
//! each request carries its own seeded sampler, so its stream cannot
//! depend on what else shares the batch.

use std::sync::Arc;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::accel::runtime::AcceleratedLlm;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::Transformer;
use speedllm::llama::generate::{generate, DecodeSession, GenerateOptions};
use speedllm::llama::sampler::{Sampler, SamplerKind};
use speedllm::llama::tokenizer::Tokenizer;
use speedllm::llama::weights::TransformerWeights;
use speedllm::pagedkv::BlockConfig;
use speedllm::serve::{
    AccelBackend, Backend, Completion, CpuBackend, Request, ServeConfig, ServeEngine,
};

const PROMPTS: [&str; 4] = ["once upon a time", "hello", "the quick brown fox", "ab"];
const MAX_NEW: usize = 8;

fn serve_cfg(slots: usize) -> ServeConfig {
    ServeConfig {
        slots,
        max_batch: 4,
        prefill_chunk: 3,
        queue_cap: 16,
        unified: None,
    }
}

fn request(id: u64, prompt: Vec<u32>, sampler: SamplerKind, seed: u64) -> Request {
    Request {
        id,
        prompt,
        max_new_tokens: MAX_NEW,
        stop_at_eos: true,
        sampler,
        seed,
        arrival: 0,
    }
}

/// Submits `prompts` all at once and drains the engine; completions come
/// back sorted by request id.
fn serve_all<B: Backend>(
    mut engine: ServeEngine<B>,
    prompts: &[Vec<u32>],
    sampler: SamplerKind,
    seed_base: u64,
) -> Vec<Completion> {
    for (i, p) in prompts.iter().enumerate() {
        engine
            .submit(request(i as u64, p.clone(), sampler, seed_base + i as u64))
            .expect("queue_cap covers the grid sizes");
    }
    let mut done = Vec::new();
    while !engine.is_idle() {
        done.extend(engine.step());
    }
    assert!(engine.all_slots_free(), "a slot leaked");
    done.sort_by_key(|c| c.id);
    done
}

fn cpu_grid_case(cfg: ModelConfig, seed: u64, n_requests: usize, slots: usize, kind: SamplerKind) {
    let tok = Tokenizer::synthetic(cfg.vocab_size, seed);
    let prompts: Vec<Vec<u32>> = PROMPTS[..n_requests]
        .iter()
        .map(|p| tok.encode(p, true, false))
        .collect();

    let backend = CpuBackend::new(Transformer::new(TransformerWeights::synthetic(cfg, seed)));
    let done = serve_all(
        ServeEngine::new(backend, serve_cfg(slots)),
        &prompts,
        kind,
        1000,
    );

    assert_eq!(done.len(), n_requests);
    for (i, text) in PROMPTS[..n_requests].iter().enumerate() {
        let mut oracle = Transformer::new(TransformerWeights::synthetic(cfg, seed));
        let mut sampler = Sampler::new(kind, 1000 + i as u64);
        let want = generate(
            &mut oracle,
            &tok,
            &mut sampler,
            text,
            GenerateOptions {
                max_new_tokens: MAX_NEW,
                stop_at_eos: true,
            },
        );
        assert_eq!(
            done[i].tokens, want.generated_tokens,
            "cpu backend diverged from llama::generate \
             (seed {seed}, n {n_requests}, slots {slots}, request {i}, {kind:?})"
        );
    }
}

fn accel_grid_case(
    cfg: ModelConfig,
    seed: u64,
    n_requests: usize,
    slots: usize,
    kind: SamplerKind,
) {
    // The sequential oracle is the accel runtime Session (which always
    // stops at EOS/BOS — hence stop_at_eos: true on every request).
    let system = AcceleratedLlm::synthetic(cfg, seed, OptConfig::full()).unwrap();
    let prompts: Vec<Vec<u32>> = PROMPTS[..n_requests]
        .iter()
        .map(|p| system.tokenizer().encode(p, true, false))
        .collect();

    let weights = Arc::new(TransformerWeights::synthetic(cfg, seed));
    let backend = AccelBackend::new(Engine::new(weights, OptConfig::full()).unwrap());
    let done = serve_all(
        ServeEngine::new(backend, serve_cfg(slots)),
        &prompts,
        kind,
        2000,
    );

    assert_eq!(done.len(), n_requests);
    for (i, text) in PROMPTS[..n_requests].iter().enumerate() {
        let mut session = system.session(kind, 2000 + i as u64);
        let want = session.generate(text, MAX_NEW).unwrap();
        assert_eq!(
            done[i].tokens, want.output.generated_tokens,
            "accel backend diverged from Session::generate \
             (seed {seed}, n {n_requests}, slots {slots}, request {i}, {kind:?})"
        );
    }
}

#[test]
fn cpu_backend_matches_sequential_generate_across_grid() {
    for seed in [7u64, 21] {
        for n_requests in [1usize, 2, 4] {
            for slots in [1usize, 2, 4] {
                for kind in [SamplerKind::Argmax, SamplerKind::Temperature(0.8)] {
                    cpu_grid_case(ModelConfig::test_tiny(), seed, n_requests, slots, kind);
                }
            }
        }
    }
}

#[test]
fn accel_backend_matches_sequential_session_across_grid() {
    for seed in [7u64, 21] {
        for n_requests in [1usize, 2, 4] {
            for slots in [1usize, 2] {
                for kind in [SamplerKind::Argmax, SamplerKind::Temperature(0.8)] {
                    accel_grid_case(ModelConfig::test_tiny(), seed, n_requests, slots, kind);
                }
            }
        }
    }
}

#[test]
fn equivalence_holds_on_a_real_preset() {
    // One heavier spot check on stories260k: both backends, mixed batch.
    cpu_grid_case(
        ModelConfig::stories260k(),
        42,
        3,
        2,
        SamplerKind::Temperature(0.9),
    );
    accel_grid_case(ModelConfig::stories260k(), 42, 2, 2, SamplerKind::Argmax);
}

/// Synthetic token prompts with a common `shared`-token prefix after BOS
/// and a 2-token unique tail, so the radix index has something to share.
fn shared_prefix_prompts(cfg: ModelConfig, n: usize, shared: usize, seed: u64) -> Vec<Vec<u32>> {
    let ord = (cfg.vocab_size - 3) as u32; // ids 3.. are ordinary tokens
    (0..n)
        .map(|i| {
            let mut p = vec![1u32]; // BOS
            for j in 0..shared {
                p.push(3 + ((seed as u32).wrapping_add(j as u32 * 13)) % ord);
            }
            p.push(3 + (i as u32 * 7 + 1) % ord);
            p.push(3 + (i as u32 * 11 + 5) % ord);
            p
        })
        .collect()
}

/// Sequential single-tenant oracle over raw token prompts.
fn decode_oracle(
    cfg: ModelConfig,
    seed: u64,
    prompt: &[u32],
    kind: SamplerKind,
    sampler_seed: u64,
) -> Vec<u32> {
    let mut model = Transformer::new(TransformerWeights::synthetic(cfg, seed));
    let mut session = DecodeSession::begin(
        &mut model,
        prompt,
        GenerateOptions {
            max_new_tokens: MAX_NEW,
            stop_at_eos: true,
        },
    );
    let mut sampler = Sampler::new(kind, sampler_seed);
    let mut out = Vec::new();
    while let Some(t) = session.step(&mut sampler) {
        out.push(t);
    }
    out
}

fn paged_cpu_case(
    cfg: ModelConfig,
    seed: u64,
    n_requests: usize,
    block_size: usize,
    shared: usize,
) {
    let prompts = shared_prefix_prompts(cfg, n_requests, shared, seed);
    let kind = SamplerKind::Temperature(0.8);
    let blocks = BlockConfig {
        block_size,
        // Equal memory to 3 flat slots.
        n_blocks: 3 * cfg.seq_len.div_ceil(block_size),
    };
    let backend = CpuBackend::new_paged(
        Transformer::new(TransformerWeights::synthetic(cfg, seed)),
        blocks,
    );
    let done = serve_all(
        ServeEngine::new(backend, serve_cfg(3)),
        &prompts,
        kind,
        4000,
    );
    assert_eq!(done.len(), n_requests);
    for (i, p) in prompts.iter().enumerate() {
        let want = decode_oracle(cfg, seed, p, kind, 4000 + i as u64);
        assert_eq!(
            done[i].tokens, want,
            "paged cpu diverged from DecodeSession \
             (seed {seed}, n {n_requests}, bs {block_size}, shared {shared}, request {i})"
        );
    }
}

fn paged_accel_case(
    cfg: ModelConfig,
    seed: u64,
    n_requests: usize,
    block_size: usize,
    shared: usize,
) {
    let prompts = shared_prefix_prompts(cfg, n_requests, shared, seed);
    let kind = SamplerKind::Temperature(0.8);
    let blocks = BlockConfig {
        block_size,
        n_blocks: 3 * cfg.seq_len.div_ceil(block_size),
    };
    let weights = Arc::new(TransformerWeights::synthetic(cfg, seed));
    let paged = AccelBackend::new_paged(
        Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap(),
        blocks,
    );
    let a = serve_all(ServeEngine::new(paged, serve_cfg(3)), &prompts, kind, 5000);
    let flat = AccelBackend::new(Engine::new(weights, OptConfig::full()).unwrap());
    let b = serve_all(ServeEngine::new(flat, serve_cfg(3)), &prompts, kind, 5000);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.tokens, y.tokens,
            "paged accel diverged from flat accel \
             (seed {seed}, n {n_requests}, bs {block_size}, shared {shared}, request {})",
            x.id
        );
    }
}

#[test]
fn paged_cpu_matches_sequential_across_grid() {
    let cfg = ModelConfig::test_tiny();
    for seed in [7u64, 21] {
        for n_requests in [2usize, 4] {
            for block_size in [4usize, 8] {
                for shared in [0usize, 5, 9] {
                    paged_cpu_case(cfg, seed, n_requests, block_size, shared);
                }
            }
        }
    }
}

#[test]
fn paged_accel_matches_flat_accel_across_grid() {
    let cfg = ModelConfig::test_tiny();
    for seed in [7u64, 21] {
        for n_requests in [2usize, 4] {
            for block_size in [4usize, 8] {
                for shared in [0usize, 5, 9] {
                    paged_accel_case(cfg, seed, n_requests, block_size, shared);
                }
            }
        }
    }
}

#[test]
fn preemption_under_tight_block_budget_preserves_streams() {
    // One spare block beyond the single-sequence minimum: concurrent
    // decoding must preempt, and every stream must still match the
    // uninterrupted oracle.
    const TIGHT_NEW: usize = 20;
    let cfg = ModelConfig::test_tiny();
    let seed = 13u64;
    let kind = SamplerKind::Temperature(0.8);
    for block_size in [4usize, 8] {
        let blocks = BlockConfig {
            block_size,
            n_blocks: cfg.seq_len.div_ceil(block_size) + 1,
        };
        let prompts = shared_prefix_prompts(cfg, 3, 0, seed);

        let backend = CpuBackend::new_paged(
            Transformer::new(TransformerWeights::synthetic(cfg, seed)),
            blocks,
        );
        let mut engine = ServeEngine::new(backend, serve_cfg(3));
        for (i, p) in prompts.iter().enumerate() {
            let mut r = request(i as u64, p.clone(), kind, 6000 + i as u64);
            r.stop_at_eos = false; // force long generations → block pressure
            r.max_new_tokens = TIGHT_NEW;
            engine.submit(r).unwrap();
        }
        let mut done = Vec::new();
        while !engine.is_idle() {
            done.extend(engine.step());
        }
        done.sort_by_key(|c| c.id);
        assert!(
            engine.stats().preemptions > 0,
            "bs {block_size}: tight budget must force preemption"
        );
        engine.check_paged_invariants().unwrap();
        for (i, p) in prompts.iter().enumerate() {
            let mut model = Transformer::new(TransformerWeights::synthetic(cfg, seed));
            let mut session = DecodeSession::begin(
                &mut model,
                p,
                GenerateOptions {
                    max_new_tokens: TIGHT_NEW,
                    stop_at_eos: false,
                },
            );
            let mut sampler = Sampler::new(kind, 6000 + i as u64);
            let mut want = Vec::new();
            while let Some(t) = session.step(&mut sampler) {
                want.push(t);
            }
            assert_eq!(
                done[i].tokens, want,
                "bs {block_size}: preemption changed request {i}"
            );
        }

        // Same tight budget through the accelerator backend.
        let weights = Arc::new(TransformerWeights::synthetic(cfg, seed));
        let paged = AccelBackend::new_paged(
            Engine::new(Arc::clone(&weights), OptConfig::full()).unwrap(),
            blocks,
        );
        let mut engine = ServeEngine::new(paged, serve_cfg(3));
        let flat = AccelBackend::new(Engine::new(weights, OptConfig::full()).unwrap());
        let mut flat_engine = ServeEngine::new(flat, serve_cfg(3));
        for (i, p) in prompts.iter().enumerate() {
            let mut r = request(i as u64, p.clone(), kind, 6000 + i as u64);
            r.stop_at_eos = false;
            r.max_new_tokens = TIGHT_NEW;
            engine.submit(r.clone()).unwrap();
            flat_engine.submit(r).unwrap();
        }
        let mut a = Vec::new();
        while !engine.is_idle() {
            a.extend(engine.step());
        }
        let mut b = Vec::new();
        while !flat_engine.is_idle() {
            b.extend(flat_engine.step());
        }
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert!(engine.stats().preemptions > 0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.tokens, y.tokens,
                "bs {block_size}: accel preemption changed request {}",
                x.id
            );
        }
    }
}

#[test]
fn cpu_and_accel_backends_agree_with_each_other() {
    // Transitivity check done directly: the two backends serve the same
    // workload and must emit the same streams (fp32 accel path).
    let cfg = ModelConfig::test_tiny();
    let seed = 11u64;
    let tok = Tokenizer::synthetic(cfg.vocab_size, seed ^ 0x5eed);
    let prompts: Vec<Vec<u32>> = PROMPTS.iter().map(|p| tok.encode(p, true, false)).collect();
    let kind = SamplerKind::Temperature(0.7);

    let cpu = CpuBackend::new(Transformer::new(TransformerWeights::synthetic(cfg, seed)));
    let a = serve_all(ServeEngine::new(cpu, serve_cfg(2)), &prompts, kind, 3000);

    let weights = Arc::new(TransformerWeights::synthetic(cfg, seed));
    let accel = AccelBackend::new(Engine::new(weights, OptConfig::full()).unwrap());
    let b = serve_all(ServeEngine::new(accel, serve_cfg(3)), &prompts, kind, 3000);

    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.tokens, y.tokens,
            "request {} differs across backends",
            x.id
        );
    }
}
