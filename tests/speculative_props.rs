//! Property suite for speculative decoding (DESIGN.md §16): across draft
//! depths, random prompts and budgets, flat and paged KV, CPU and
//! accelerator verifiers, serial and parallel matvec strategies, and both
//! greedy and seeded stochastic samplers, the emitted stream must be
//! **bit-identical** — exact `assert_eq`, no tolerance — to plain
//! sequential decoding with the same sampler seed. Rollback is checked
//! against a from-scratch oracle (no stale draft rows survive in the kept
//! KV context) and, for paged storage, against free-list conservation.
//!
//! Model fixtures come from `speedllm_testkit::fixture`, so the
//! cross-model test loads the stories260K-shaped draft and the stories15M
//! target once per test binary.

use speedllm_testkit::fixture;
use speedllm_testkit::prelude::*;

use speedllm::accel::engine::Engine;
use speedllm::accel::opt::OptConfig;
use speedllm::accel::speculative::AccelVerifier;
use speedllm::llama::config::ModelConfig;
use speedllm::llama::forward::{MatVecStrategy, Transformer};
use speedllm::llama::generate::{DecodeSession, GenerateOptions};
use speedllm::llama::kv_cache::{KvCache, KvStore};
use speedllm::llama::rng::Xoshiro256;
use speedllm::llama::sampler::{Sampler, SamplerKind};
use speedllm::llama::speculative::{run_speculative, CpuVerifier, SpecSession};
use speedllm::llama::weights::TransformerWeights;
use speedllm::pagedkv::{BlockAllocator, BlockConfig, PagedKvArena};
use std::sync::Arc;

const BLOCKS: BlockConfig = BlockConfig {
    block_size: 4,
    n_blocks: 16,
};

/// Target weights, synthesized once per test binary.
fn target_weights() -> Arc<TransformerWeights> {
    fixture::cached("spec-target-tiny", || {
        TransformerWeights::synthetic(ModelConfig::test_tiny(), 42)
    })
}

/// An *independent* draft (same vocab/window, different seed) so
/// acceptance is imperfect and every rollback path actually runs.
fn draft_weights() -> Arc<TransformerWeights> {
    fixture::cached("spec-draft-tiny", || {
        TransformerWeights::synthetic(ModelConfig::test_tiny(), 9)
    })
}

fn draft_model() -> Transformer {
    Transformer::new(draft_weights().as_ref().clone())
}

/// The sequential reference stream for one workload.
fn oracle_stream(
    prompt: &[u32],
    kind: SamplerKind,
    sampler_seed: u64,
    opts: GenerateOptions,
    strategy: MatVecStrategy,
) -> Vec<u32> {
    let mut model = Transformer::new(target_weights().as_ref().clone());
    model.set_strategy(strategy);
    let mut sampler = Sampler::new(kind, sampler_seed);
    let mut session = DecodeSession::begin(&mut model, prompt, opts);
    let mut out = Vec::new();
    while let Some(t) = session.step(&mut sampler) {
        out.push(t);
    }
    out
}

/// A random workload drawn from the case seed: prompt, budget, sampler.
fn workload(rng: &mut Xoshiro256, greedy: bool) -> (Vec<u32>, GenerateOptions, SamplerKind, u64) {
    let cfg = ModelConfig::test_tiny();
    let len = 1 + rng.below(5) as usize;
    let prompt: Vec<u32> = (0..len)
        .map(|_| rng.below(cfg.vocab_size as u64) as u32)
        .collect();
    let opts = GenerateOptions {
        max_new_tokens: 1 + rng.below(14) as usize,
        stop_at_eos: rng.below(2) == 0,
    };
    let kind = if greedy {
        SamplerKind::Argmax
    } else {
        SamplerKind::Temperature(0.8)
    };
    (prompt, opts, kind, rng.below(1 << 32))
}

props! {
    #![config(cases = 32)]

    /// CPU verifier, flat and paged KV, serial and parallel matvec: the
    /// speculative stream equals the sequential one bit-for-bit, the kept
    /// KV context equals a from-scratch prefill (rollback left nothing
    /// stale behind), and paged storage conserves its free list.
    fn cpu_speculative_matches_sequential_decode(
        k in 1usize..9,
        paged in any_bool(),
        parallel in any_bool(),
        greedy in any_bool(),
        seed in any_u64(),
    ) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let (prompt, opts, kind, sseed) = workload(&mut rng, greedy);
        let strategy = if parallel {
            MatVecStrategy::Parallel { threads: 3 }
        } else {
            MatVecStrategy::Serial
        };
        let want = oracle_stream(&prompt, kind, sseed, opts, strategy);

        let mut tmodel = Transformer::new(target_weights().as_ref().clone());
        tmodel.set_strategy(strategy);
        let mut dmodel = draft_model();
        dmodel.set_strategy(strategy);
        let mut dkv = KvCache::new(&cfg);
        let mut sampler = Sampler::new(kind, sseed);

        let (got, metrics, history, kept) = if paged {
            let mut alloc = BlockAllocator::new(BLOCKS);
            let mut arena = PagedKvArena::new(&cfg, BLOCKS);
            let mut table = speedllm::pagedkv::BlockTable::new(BLOCKS.block_size);
            while table.capacity_tokens() < cfg.seq_len {
                table.push_block(alloc.alloc().expect("arena sized for one sequence"));
            }
            let (got, metrics, history) = {
                let mut view = arena.view(&mut table);
                let mut verifier = CpuVerifier::new(&mut tmodel, &mut view);
                let mut session = SpecSession::begin(&mut verifier, &prompt, k, opts);
                let got = run_speculative(
                    &mut session, &mut verifier, &mut dmodel, &mut dkv, &mut sampler,
                );
                (got, *session.metrics(), session.history().to_vec())
            };
            let kept = table.len();

            // Rollback oracle: every kept row matches a fresh flat
            // prefill of the same history — rejected draft rows are gone.
            let mut fresh_model = Transformer::new(target_weights().as_ref().clone());
            fresh_model.set_strategy(strategy);
            let mut fresh = KvCache::new(&cfg);
            for (pos, &tok) in history[..kept].iter().enumerate() {
                fresh_model.forward_with_kv(&mut fresh, tok, pos);
            }
            let view = arena.view(&mut table);
            for layer in 0..cfg.n_layers {
                for pos in 0..kept {
                    for h in 0..cfg.n_kv_heads {
                        prop_assert_eq!(
                            view.key_head(layer, pos, h),
                            fresh.key_head(layer, pos, h),
                            "stale K at layer {} pos {} head {}", layer, pos, h
                        );
                        prop_assert_eq!(
                            view.value_head(layer, pos, h),
                            fresh.value_head(layer, pos, h),
                            "stale V at layer {} pos {} head {}", layer, pos, h
                        );
                    }
                }
            }
            for b in table.take_blocks() {
                prop_assert!(alloc.release(b), "sole owner's release must free");
            }
            prop_assert_eq!(alloc.free_blocks(), BLOCKS.n_blocks, "block leak");
            prop_assert!(alloc.check_invariants().is_ok());
            (got, metrics, history, kept)
        } else {
            let mut tkv = KvCache::new(&cfg);
            let (got, metrics, history) = {
                let mut verifier = CpuVerifier::new(&mut tmodel, &mut tkv);
                let mut session = SpecSession::begin(&mut verifier, &prompt, k, opts);
                let got = run_speculative(
                    &mut session, &mut verifier, &mut dmodel, &mut dkv, &mut sampler,
                );
                (got, *session.metrics(), session.history().to_vec())
            };
            let kept = tkv.len();
            let mut fresh_model = Transformer::new(target_weights().as_ref().clone());
            fresh_model.set_strategy(strategy);
            let mut fresh = KvCache::new(&cfg);
            for (pos, &tok) in history[..kept].iter().enumerate() {
                fresh_model.forward_with_kv(&mut fresh, tok, pos);
            }
            for layer in 0..cfg.n_layers {
                for pos in 0..kept {
                    prop_assert_eq!(tkv.key_row(layer, pos), fresh.key_row(layer, pos));
                    prop_assert_eq!(tkv.value_row(layer, pos), fresh.value_row(layer, pos));
                }
            }
            (got, metrics, history, kept)
        };

        prop_assert_eq!(
            &got, &want,
            "k={} paged={} parallel={} kind={:?} diverged", k, paged, parallel, kind
        );
        prop_assert_eq!(history.len(), prompt.len() + got.len());
        prop_assert!(kept <= history.len(), "context past the history");
        prop_assert_eq!(metrics.emitted as usize, got.len());
        prop_assert!(metrics.accepted <= metrics.drafted, "accounting inverted");
        // The draft may hold speculative context past the history when a
        // round ends early (EOS), but never past its window.
        prop_assert!(dkv.len() <= cfg.seq_len);
    }

    /// Accelerator verifier (one mixed verify pass per round through
    /// `Engine::verify_batch`), flat and paged sequences: same stream as
    /// the sequential CPU reference, and paged rollback keeps the free
    /// list conserved while releasing blocks through CoW refcounting.
    fn accel_speculative_matches_sequential_decode(
        k in 1usize..6,
        paged in any_bool(),
        greedy in any_bool(),
        seed in any_u64(),
    ) {
        let cfg = ModelConfig::test_tiny();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let (prompt, opts, kind, sseed) = workload(&mut rng, greedy);
        let want = oracle_stream(&prompt, kind, sseed, opts, MatVecStrategy::Serial);

        let mut engine = Engine::new(target_weights(), OptConfig::full()).unwrap();
        if paged {
            engine.enable_paged_kv(BLOCKS);
        }
        let mut seq = engine.new_sequence();
        let mut alloc = BlockAllocator::new(BLOCKS);
        let mut dmodel = draft_model();
        let mut dkv = KvCache::new(&cfg);
        let mut sampler = Sampler::new(kind, sseed);

        // Rollback pops whole blocks back to the allocator, so capacity
        // must be re-granted before each round (the serve scheduler's
        // `spec_ensure_capacity` job; here the test plays scheduler).
        let grant = |seq: &mut speedllm::accel::engine::SequenceState,
                     alloc: &mut BlockAllocator| {
            if let Some(table) = seq.block_table_mut() {
                while table.capacity_tokens() < cfg.seq_len {
                    table.push_block(alloc.alloc().expect("arena sized for one sequence"));
                }
            }
        };

        grant(&mut seq, &mut alloc);
        let mut session = {
            let mut verifier = if paged {
                AccelVerifier::new_paged(&mut engine, &mut seq, &mut alloc)
            } else {
                AccelVerifier::new(&mut engine, &mut seq)
            };
            SpecSession::begin(&mut verifier, &prompt, k, opts)
        };
        let mut got = Vec::new();
        let mut verify_cycles = 0u64;
        while !session.is_finished() {
            grant(&mut seq, &mut alloc);
            let mut verifier = if paged {
                AccelVerifier::new_paged(&mut engine, &mut seq, &mut alloc)
            } else {
                AccelVerifier::new(&mut engine, &mut seq)
            };
            session.round(&mut verifier, &mut dmodel, &mut dkv, &mut sampler, &mut got);
            verify_cycles += verifier.cycles();
        }

        prop_assert_eq!(
            &got, &want,
            "k={} paged={} kind={:?} accel diverged", k, paged, kind
        );
        let m = *session.metrics();
        prop_assert_eq!(m.emitted as usize, got.len());
        prop_assert!(m.rounds as usize <= got.len() + 1, "rounds must not exceed emissions");
        if m.rounds > 0 {
            prop_assert!(verify_cycles > 0, "verify passes must cost device cycles");
        }
        if paged {
            let popped = seq.truncate(0);
            for b in popped {
                prop_assert!(alloc.release(b), "sole owner's release must free");
            }
            prop_assert_eq!(alloc.free_blocks(), BLOCKS.n_blocks, "block leak");
            prop_assert!(alloc.check_invariants().is_ok());
        }
    }
}

/// The cross-model pairing from the paper setup: a stories260K-shaped
/// draft trunk speaking the stories15M target's vocabulary
/// (`ModelConfig::draft_for`). Both weight sets load through the fixture
/// cache, so this test — and anything else in the binary wanting either
/// model — pays the synthesis cost once.
#[test]
fn stories15m_target_with_draft_for_trunk_is_bit_identical() {
    let target_cfg = ModelConfig::stories15m();
    let tweights = fixture::cached("stories15m-target", || {
        TransformerWeights::synthetic(ModelConfig::stories15m(), 42)
    });
    let dweights = fixture::cached("stories260k-draft-for-15m", || {
        TransformerWeights::synthetic(ModelConfig::draft_for(&ModelConfig::stories15m()), 43)
    });
    // Second lookups must hit the cache, not re-synthesize ~15M params.
    assert!(Arc::ptr_eq(
        &tweights,
        &fixture::cached("stories15m-target", || unreachable!("cache must hit"))
    ));
    assert!(Arc::ptr_eq(
        &dweights,
        &fixture::cached("stories260k-draft-for-15m", || unreachable!(
            "cache must hit"
        ))
    ));

    let opts = GenerateOptions {
        max_new_tokens: 4,
        stop_at_eos: true,
    };
    let prompt = [1u32, 310, 542];
    let want = {
        let mut model = Transformer::new(tweights.as_ref().clone());
        let mut sampler = Sampler::argmax();
        let mut session = DecodeSession::begin(&mut model, &prompt, opts);
        let mut out = Vec::new();
        while let Some(t) = session.step(&mut sampler) {
            out.push(t);
        }
        out
    };

    let mut tmodel = Transformer::new(tweights.as_ref().clone());
    let mut tkv = KvCache::new(&target_cfg);
    let mut dmodel = Transformer::new(dweights.as_ref().clone());
    let mut dkv = KvCache::new(dmodel.config());
    let mut verifier = CpuVerifier::new(&mut tmodel, &mut tkv);
    let mut session = SpecSession::begin(&mut verifier, &prompt, 3, opts);
    let got = run_speculative(
        &mut session,
        &mut verifier,
        &mut dmodel,
        &mut dkv,
        &mut Sampler::argmax(),
    );
    assert_eq!(got, want, "cross-model speculative stream diverged");
}

/// Documents why the *literal* stories260K checkpoint cannot draft for
/// stories15M (the negative-path CLI test relies on this): the presets
/// disagree on vocabulary, while `draft_for` adopts the target's.
#[test]
fn raw_preset_pairing_is_incompatible_but_draft_for_is_not() {
    let draft = ModelConfig::stories260k();
    let target = ModelConfig::stories15m();
    assert_ne!(
        draft.vocab_size, target.vocab_size,
        "if these ever agree, the CLI vocab-mismatch test needs a new pair"
    );
    let adapted = ModelConfig::draft_for(&target);
    assert_eq!(adapted.vocab_size, target.vocab_size);
    assert_eq!(adapted.seq_len, target.seq_len);
    assert!(
        adapted.n_layers < target.n_layers,
        "the draft must stay cheaper than the target"
    );
}
